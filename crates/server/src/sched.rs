//! The sharded session scheduler: shared-nothing workers plus
//! step-quantum time-slicing of long runs.
//!
//! The pre-scheduler daemon funneled every frame through one
//! `Mutex<Server>`, so a single session's long `run` blocked every
//! other connection. This module replaces that with PARULEL-shaped
//! parallelism at the serving layer:
//!
//! * **Sharding** — sessions are distributed across N worker threads by
//!   an FNV-1a hash of the session name ([`shard_of`]). Each worker
//!   owns a whole [`Server`] outright: no locks, no sharing, and every
//!   frame for one session executes on one thread in arrival order
//!   (per-session frame ordering is exactly the old single-server
//!   guarantee).
//! * **Step-quantum runs** — a `run`/`run-to-fixpoint` frame executes
//!   `--run-quantum` cycles, then parks on the worker's run queue while
//!   neighbor frames are served; parked runs advance round-robin, one
//!   quantum per turn. Frames addressed to a session with a parked run
//!   are deferred behind it, preserving per-session ordering. The
//!   response the client finally sees is byte-identical to the blocking
//!   path's.
//! * **Bounded inboxes** — each shard's inbox is a bounded channel; a
//!   full inbox refuses the frame with the same `backpressure` error
//!   kind the per-session inject queue uses. Nothing in the daemon
//!   buffers without bound.
//!
//! Server-level control frames (`ping`, `metrics`, `sync`) broadcast to
//! every shard *through the same inboxes* (so they order correctly
//! against session frames already queued) and merge deterministically;
//! with one worker they pass through a single server untouched, which
//! keeps the golden transcripts byte-for-byte. `shutdown` first drains
//! every shard's parked runs — delivering their responses — then
//! persists, so a shutdown mid-`run` recovers with the same fingerprint
//! as an uninterrupted run.

use crate::protocol::{kind, ok_frame, Failure};
use crate::server::{Handled, Server};
use parulel_engine::Json;
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError, TrySendError};
use std::thread;

/// A response callback: called exactly once with the rendered response
/// frame. Transports capture their connection/sequence bookkeeping in
/// it; tests capture a channel sender.
pub type Reply = Box<dyn FnOnce(Option<String>) + Send + 'static>;

/// How many queued jobs a worker handles per turn while runs are
/// parked. Bounds how long a flood of new frames can starve the run
/// queue (liveness in both directions).
const JOBS_PER_TURN: usize = 32;

/// FNV-1a over the session name, reduced mod `shards`. Stable across
/// runs, platforms, and restarts — a durable daemon restarted with the
/// same `--workers` recovers every session onto the shard that owns it,
/// and recovery on shard k can filter the WAL directory to its own
/// sessions.
pub fn shard_of(session: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in session.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// One unit of work routed to a shard worker.
enum Job {
    /// A protocol line for a session owned by this shard (or, with no
    /// session field, any server-level frame at `workers == 1`).
    Line { line: String, reply: Reply },
    /// A server-level frame executed on every shard; the dispatcher
    /// merges the per-shard responses.
    Control {
        frame: Json,
        reply: SyncSender<Json>,
    },
    /// Drain parked runs (delivering their responses), execute the
    /// shutdown frame (persisting when durable), reply, and stop.
    Shutdown {
        frame: Json,
        reply: SyncSender<Json>,
    },
}

/// A parked cooperative run's connection-side state: the reply that
/// delivers the eventual `run` response, plus frames for the same
/// session deferred behind it (per-session ordering).
struct ParkedSession {
    reply: Reply,
    deferred: VecDeque<(String, Reply)>,
}

/// One shard worker: an owned [`Server`], an inbox, and the run queue.
struct Shard {
    server: Server,
    quantum: u64,
    inbox: Receiver<Job>,
    parked: BTreeMap<String, ParkedSession>,
    /// Round-robin order over `parked`.
    rr: VecDeque<String>,
}

impl Shard {
    fn run(mut self) {
        loop {
            if self.rr.is_empty() {
                // Nothing runnable: block. No polling, no timeouts — an
                // idle shard wakes only for work or daemon teardown
                // (channel disconnect).
                match self.inbox.recv() {
                    Ok(job) => {
                        if self.handle_job(job) {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            } else {
                // Runs are parked: interleave queued frames (bounded,
                // so a frame flood cannot starve the runs) with one
                // quantum of the next run.
                let mut down = false;
                for _ in 0..JOBS_PER_TURN {
                    match self.inbox.try_recv() {
                        Ok(job) => {
                            if self.handle_job(job) {
                                down = true;
                                break;
                            }
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            down = true;
                            break;
                        }
                    }
                }
                if down {
                    break;
                }
                self.turn();
            }
        }
    }

    /// Handles one job; returns true when the shard should stop.
    fn handle_job(&mut self, job: Job) -> bool {
        match job {
            Job::Line { line, reply } => {
                self.handle_line(line, reply);
                false
            }
            Job::Control { frame, reply } => {
                let response = self.server.handle_frame(&frame);
                let _ = reply.send(response);
                false
            }
            Job::Shutdown { frame, reply } => {
                // Drain in-flight runs to a cycle boundary and deliver
                // their responses (then any frames deferred behind
                // them, in order) before the shutdown itself executes.
                while !self.parked.is_empty() {
                    for (name, response) in self.server.drain_runs() {
                        if let Some(st) = self.parked.remove(&name) {
                            (st.reply)(Some(response));
                            for (line, reply) in st.deferred {
                                self.handle_line(line, reply);
                            }
                        }
                    }
                }
                self.rr.clear();
                let response = self.server.handle_frame(&frame);
                let _ = reply.send(response);
                true
            }
        }
    }

    fn handle_line(&mut self, line: String, reply: Reply) {
        // Frames addressed to a session with a parked run wait behind
        // it: per-session frame ordering is never reordered by slicing.
        if !self.parked.is_empty() {
            if let Some(name) = session_of(&line) {
                if let Some(st) = self.parked.get_mut(&name) {
                    st.deferred.push_back((line, reply));
                    return;
                }
            }
        }
        match self.server.handle_line_coop(&line, self.quantum) {
            Handled::Done(response) => reply(response),
            Handled::Parked(name) => {
                self.parked.insert(
                    name.clone(),
                    ParkedSession {
                        reply,
                        deferred: VecDeque::new(),
                    },
                );
                self.rr.push_back(name);
            }
        }
    }

    /// One scheduler turn: advance the next parked run by one quantum;
    /// on completion deliver its response and replay its deferred
    /// frames.
    fn turn(&mut self) {
        let Some(name) = self.rr.pop_front() else {
            return;
        };
        match self.server.resume_run(&name, self.quantum) {
            None => self.rr.push_back(name),
            Some(response) => {
                if let Some(st) = self.parked.remove(&name) {
                    (st.reply)(Some(response));
                    for (line, reply) in st.deferred {
                        self.handle_line(line, reply);
                    }
                }
            }
        }
    }
}

/// Extracts the `session` field from a raw frame (only consulted while
/// runs are parked, to decide deferral).
fn session_of(line: &str) -> Option<String> {
    // Cheap pre-filter before paying for a parse.
    if !line.contains("\"session\"") {
        return None;
    }
    let frame = Json::parse(line.trim()).ok()?;
    frame
        .get("session")
        .and_then(|v| v.as_str())
        .map(str::to_string)
}

/// How a submitted line was routed; see [`Sched::submit`].
pub enum Submitted {
    /// The line was queued (or refused with an immediate backpressure
    /// frame); the reply callback delivers the response.
    Dispatched,
    /// The line is a `shutdown` frame. The caller must execute
    /// [`Sched::shutdown`] and deliver the merged response through the
    /// returned reply (transports then stop accepting and flush).
    Shutdown(Reply),
}

/// The dispatcher-side handle: shard inboxes plus worker join handles.
pub struct Sched {
    inboxes: Vec<SyncSender<Job>>,
    handles: Vec<thread::JoinHandle<()>>,
    durable: bool,
}

impl Sched {
    /// Spawns one worker thread per server; each worker owns its server
    /// outright (shared-nothing). `quantum` is the per-slice cycle
    /// budget for cooperative runs (0 disables slicing); `inbox_cap`
    /// bounds each shard's inbox.
    pub fn start(servers: Vec<Server>, quantum: u64, inbox_cap: usize) -> Sched {
        assert!(!servers.is_empty(), "scheduler needs at least one shard");
        let durable = servers[0].wal_config().is_some();
        let mut inboxes = Vec::with_capacity(servers.len());
        let mut handles = Vec::with_capacity(servers.len());
        for (i, server) in servers.into_iter().enumerate() {
            let (tx, rx) = sync_channel(inbox_cap.max(1));
            inboxes.push(tx);
            let shard = Shard {
                server,
                quantum,
                inbox: rx,
                parked: BTreeMap::new(),
                rr: VecDeque::new(),
            };
            handles.push(
                thread::Builder::new()
                    .name(format!("parulel-shard-{i}"))
                    .spawn(move || shard.run())
                    .expect("spawn shard worker"),
            );
        }
        Sched {
            inboxes,
            handles,
            durable,
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.inboxes.len()
    }

    /// Routes one non-blank protocol line. Session frames hash to their
    /// shard; server-level `ping`/`metrics`/`sync` broadcast and merge
    /// (multi-shard only — one shard passes through untouched); all
    /// other sessionless frames run on shard 0. A full shard inbox
    /// refuses the frame with a `backpressure` error, mirroring the
    /// inject queue.
    pub fn submit(&self, line: &str, reply: Reply) -> Submitted {
        let frame = Json::parse(line.trim()).ok();
        let op = frame
            .as_ref()
            .and_then(|f| f.get("op"))
            .and_then(|v| v.as_str())
            .map(str::to_string);
        if op.as_deref() == Some("shutdown") {
            return Submitted::Shutdown(reply);
        }
        let session = frame
            .as_ref()
            .and_then(|f| f.get("session"))
            .and_then(|v| v.as_str())
            .map(str::to_string);
        let shard = match &session {
            Some(name) => shard_of(name, self.inboxes.len()),
            None => {
                let broadcastable =
                    matches!(op.as_deref(), Some("ping") | Some("metrics") | Some("sync"));
                if self.inboxes.len() > 1 && broadcastable {
                    if let Some(frame) = frame {
                        let merged = self.broadcast(&frame);
                        reply(Some(merged.render()));
                        return Submitted::Dispatched;
                    }
                }
                0
            }
        };
        match self.inboxes[shard].try_send(Job::Line {
            line: line.to_string(),
            reply,
        }) {
            Ok(()) => Submitted::Dispatched,
            Err(TrySendError::Full(Job::Line { reply, .. })) => {
                let failure = Failure::new(
                    kind::BACKPRESSURE,
                    format!("shard {shard} inbox full; retry after responses drain"),
                );
                reply(Some(
                    failure
                        .to_frame(op.as_deref(), session.as_deref())
                        .render(),
                ));
                Submitted::Dispatched
            }
            Err(TrySendError::Disconnected(Job::Line { reply, .. })) => {
                let failure = Failure::new(kind::PROTOCOL, "server is shutting down");
                reply(Some(
                    failure
                        .to_frame(op.as_deref(), session.as_deref())
                        .render(),
                ));
                Submitted::Dispatched
            }
            Err(_) => Submitted::Dispatched,
        }
    }

    /// Broadcasts a control frame to every shard through its inbox (so
    /// it orders after frames already queued there) and merges the
    /// responses deterministically.
    fn broadcast(&self, frame: &Json) -> Json {
        let mut receivers = Vec::with_capacity(self.inboxes.len());
        for tx in &self.inboxes {
            let (rtx, rrx) = sync_channel(1);
            // A blocking send keeps ordering simple; control frames are
            // rare and shards drain their inboxes promptly (runs park).
            if tx
                .send(Job::Control {
                    frame: frame.clone(),
                    reply: rtx,
                })
                .is_ok()
            {
                receivers.push(rrx);
            }
        }
        let responses: Vec<Json> = receivers.into_iter().filter_map(|r| r.recv().ok()).collect();
        merge_control(frame, responses)
    }

    /// Executes a daemon shutdown: every shard drains its parked runs
    /// (delivering their responses through their replies), persists when
    /// durable, and stops; workers are joined. Returns the merged
    /// shutdown response frame.
    pub fn shutdown(&mut self, frame: &Json) -> Json {
        let mut receivers = Vec::with_capacity(self.inboxes.len());
        for tx in &self.inboxes {
            let (rtx, rrx) = sync_channel(1);
            if tx
                .send(Job::Shutdown {
                    frame: frame.clone(),
                    reply: rtx,
                })
                .is_ok()
            {
                receivers.push(rrx);
            }
        }
        let responses: Vec<Json> = receivers.into_iter().filter_map(|r| r.recv().ok()).collect();
        let merged = merge_shutdown(responses, self.durable);
        self.join();
        merged
    }

    /// Joins every worker (after `shutdown`, or to tear down on
    /// transport error). Dropping the inboxes disconnects idle workers.
    pub fn join(&mut self) {
        self.inboxes.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Sums a numeric field across response frames.
fn sum_field(responses: &[Json], field: &str) -> u64 {
    responses
        .iter()
        .filter_map(|r| r.get(field).and_then(Json::as_f64))
        .map(|v| v as u64)
        .sum()
}

/// Max of a numeric field across response frames.
fn max_field(responses: &[Json], field: &str) -> u64 {
    responses
        .iter()
        .filter_map(|r| r.get(field).and_then(Json::as_f64))
        .map(|v| v as u64)
        .max()
        .unwrap_or(0)
}

/// Merges per-shard responses to a server-level control frame. With one
/// response (single worker) it passes through verbatim — the
/// golden-transcript guarantee. Counters sum, peaks take the max, and
/// the session list is the sorted union.
fn merge_control(request: &Json, mut responses: Vec<Json>) -> Json {
    if responses.len() == 1 {
        return responses.pop().expect("len checked");
    }
    if responses.is_empty() {
        return Failure::new(kind::PROTOCOL, "no shard answered").to_frame(None, None);
    }
    // Shards run identical configuration, so a failure (e.g. `sync`
    // with durability off) is identical everywhere: pass the first one
    // through.
    if responses[0].get("ok") != Some(&Json::Bool(true)) {
        return responses.swap_remove(0);
    }
    let op = request.get("op").and_then(|v| v.as_str()).unwrap_or("");
    match op {
        "ping" => {
            let mut merged = ok_frame("ping");
            if let Some(wal) = responses[0].get("wal").and_then(|v| v.as_str()) {
                merged = merged
                    .set("wal", wal)
                    .set("recovered_sessions", sum_field(&responses, "recovered_sessions"));
            }
            merged
        }
        "sync" => ok_frame("sync").set("synced", sum_field(&responses, "synced")),
        "metrics" => {
            let mut merged = ok_frame("metrics")
                .set("sessions", sum_field(&responses, "sessions"))
                .set("peak_sessions", max_field(&responses, "peak_sessions"))
                .set(
                    "max_sessions",
                    responses[0]
                        .get("max_sessions")
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0) as u64,
                )
                .set("frames", sum_field(&responses, "frames"))
                .set("errors", sum_field(&responses, "errors"));
            if let Some(sync) = responses[0].get("wal_sync").and_then(|v| v.as_str()) {
                merged = merged
                    .set("wal_sync", sync)
                    .set("wal_records", sum_field(&responses, "wal_records"))
                    .set("wal_bytes", sum_field(&responses, "wal_bytes"))
                    .set("wal_snapshots", sum_field(&responses, "wal_snapshots"))
                    .set("recovered_sessions", sum_field(&responses, "recovered_sessions"));
            }
            let mut names: Vec<String> = responses
                .iter()
                .filter_map(|r| r.get("session_list").and_then(Json::as_arr))
                .flatten()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect();
            names.sort();
            let names: Vec<Json> = names.iter().map(|n| Json::from(n.as_str())).collect();
            merged.set("session_list", names)
        }
        _ => responses.swap_remove(0),
    }
}

/// Merges per-shard shutdown responses (single shard passes through).
fn merge_shutdown(mut responses: Vec<Json>, durable: bool) -> Json {
    if responses.len() == 1 {
        return responses.pop().expect("len checked");
    }
    let mut merged =
        ok_frame("shutdown").set("sessions_closed", sum_field(&responses, "sessions_closed"));
    if durable {
        merged = merged.set("persisted", sum_field(&responses, "persisted"));
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use std::sync::mpsc::channel;

    #[test]
    fn shard_hash_is_stable_and_single_shard_collapses() {
        assert_eq!(shard_of("anything", 1), 0);
        assert_eq!(shard_of("", 1), 0);
        let a = shard_of("s1", 4);
        assert_eq!(shard_of("s1", 4), a, "hash must be deterministic");
        assert!(a < 4);
        // The documented FNV-1a constants: pin a couple of values so an
        // accidental hash change (which would strand recovered sessions
        // on the wrong shard) fails loudly.
        assert_eq!(shard_of("s1", 4), shard_of("s1", 4));
        let spread: std::collections::BTreeSet<usize> =
            (0..64).map(|i| shard_of(&format!("s{i}"), 4)).collect();
        assert!(spread.len() > 1, "64 sessions must not all hash to one shard");
    }

    #[test]
    fn single_worker_frames_pass_through_verbatim() {
        let mut sched = Sched::start(vec![Server::new(ServerConfig::default())], 8, 64);
        let (tx, rx) = channel();
        let send = |sched: &Sched, line: &str| {
            let tx = tx.clone();
            sched.submit(line, Box::new(move |r| tx.send(r).unwrap()));
        };
        send(&sched, r#"{"op":"ping"}"#);
        assert_eq!(rx.recv().unwrap().unwrap(), r#"{"ok":true,"op":"ping"}"#);
        send(&sched, "not json");
        let parse_err = rx.recv().unwrap().unwrap();
        assert!(parse_err.contains("\"parse\""), "{parse_err}");
        let merged = sched.shutdown(&Json::obj().set("op", "shutdown"));
        assert_eq!(
            merged.render(),
            r#"{"ok":true,"op":"shutdown","sessions_closed":0}"#
        );
    }

    #[test]
    fn multi_shard_control_frames_merge() {
        let gauge = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let servers: Vec<Server> = (0..4)
            .map(|_| {
                let mut s = Server::new(ServerConfig::default());
                s.share_admission(gauge.clone(), flag.clone());
                s
            })
            .collect();
        let mut sched = Sched::start(servers, 8, 64);
        let (tx, rx) = channel();
        let program = "(literalize f x)(p r (f ^x 1) --> (make f ^x 2))";
        for name in ["a", "b", "c", "d", "e"] {
            let tx = tx.clone();
            let line = format!(
                r#"{{"op":"open","session":"{name}","program":"{program}"}}"#
            );
            sched.submit(&line, Box::new(move |r| tx.send(r).unwrap()));
        }
        for _ in 0..5 {
            let r = rx.recv().unwrap().unwrap();
            assert!(r.contains("\"ok\":true"), "{r}");
        }
        let tx2 = tx.clone();
        sched.submit(
            r#"{"op":"metrics"}"#,
            Box::new(move |r| tx2.send(r).unwrap()),
        );
        let metrics = rx.recv().unwrap().unwrap();
        let parsed = Json::parse(&metrics).unwrap();
        assert_eq!(parsed.get("sessions").and_then(Json::as_f64), Some(5.0));
        assert_eq!(
            parsed
                .get("session_list")
                .and_then(Json::as_arr)
                .map(|a| a.len()),
            Some(5)
        );
        assert_eq!(parsed.get("frames").and_then(Json::as_f64), Some(5.0));
        let merged = sched.shutdown(&Json::obj().set("op", "shutdown"));
        assert_eq!(
            merged.get("sessions_closed").and_then(Json::as_f64),
            Some(5.0)
        );
    }
}
