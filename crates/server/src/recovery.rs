//! Daemon-start recovery: rebuild every session the last process left
//! behind in `--wal-dir`.
//!
//! The algorithm leans entirely on determinism. A session's WAL is the
//! sequence of accepted mutating frames (possibly compacted to a
//! snapshot record plus a tail); the protocol core is deterministic; so
//! replaying the records through the very same
//! [`Server::handle_frame`] dispatch rebuilds the exact pre-crash
//! session — a property the crash tests check with WM fingerprints
//! rather than assume.
//!
//! Per file, in deterministic (file-name) order:
//!
//! 1. **Decode** the session name from the file name; refuse files this
//!    daemon could not have written.
//! 2. **Scan** the log, stopping at the first torn or corrupt record.
//!    A torn tail — the partial record a `kill -9` mid-append leaves —
//!    is physically truncated away, never replayed.
//! 3. **Replay**: a snapshot record re-opens the session, replays any
//!    logged `reload` frames (the program swap is not part of the engine
//!    snapshot), and restores engine state via the versioned snapshot
//!    format; frame records run through `handle_frame` with WAL I/O
//!    suppressed.
//! 4. **Reattach**: a session that survived replay gets a resumed log
//!    handle (appends continue where the log left off); a session whose
//!    replay closed or killed it has nothing to recover, so its file is
//!    deleted.
//!
//! Files that cannot be recovered (foreign magic, unsupported version,
//! zero length, undecodable name) are *left on disk* and reported in
//! the [`RecoveryReport`] — recovery never destroys what it does not
//! understand.

use crate::protocol;
use crate::server::Server;
use crate::wal::{self, Record, SessionWal, WalConfig, WalError};
use parulel_engine::{Json, Snapshot};
use std::fs::OpenOptions;
use std::path::Path;

/// What recovery did, for the daemon's startup banner and `ping`.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Sessions rebuilt and live again.
    pub sessions_recovered: usize,
    /// WAL files skipped (foreign, unreadable, refused open) — left on
    /// disk, reasons in `notes`.
    pub sessions_skipped: usize,
    /// Frame records replayed through the protocol core.
    pub frames_replayed: u64,
    /// Torn trailing records truncated away.
    pub torn_records: u64,
    /// Human-readable notes, one per anomaly.
    pub notes: Vec<String>,
}

impl RecoveryReport {
    /// One-line summary for the startup banner.
    pub fn summary(&self) -> String {
        format!(
            "recovered {} session(s), replayed {} frame(s), truncated {} torn record(s), skipped {}",
            self.sessions_recovered, self.frames_replayed, self.torn_records, self.sessions_skipped
        )
    }
}

/// Scans `config.dir` and rebuilds every recoverable session into
/// `server`. See the [module docs](self).
pub fn recover(server: &mut Server, config: &WalConfig) -> RecoveryReport {
    recover_shard(server, config, 0, 1)
}

/// [`recover`] restricted to the sessions one scheduler shard owns:
/// only WAL files whose decoded session name hashes to `shard` (under
/// [`crate::sched::shard_of`] with `shards` workers) are recovered into
/// `server`; every other file is ignored — not skipped, not noted — so
/// N shards scanning the same directory partition it exactly.
///
/// Undecodable file names are claimed by shard 0 (exactly one shard
/// must report them).
pub fn recover_shard(
    server: &mut Server,
    config: &WalConfig,
    shard: usize,
    shards: usize,
) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    let entries = match std::fs::read_dir(&config.dir) {
        Ok(entries) => entries,
        // A missing WAL dir is the common first boot, not an anomaly.
        Err(_) => return report,
    };
    let mut files: Vec<(String, std::path::PathBuf)> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            name.ends_with(".wal").then(|| (name, e.path()))
        })
        .collect();
    files.sort();
    for (file_name, path) in files {
        let owner = match wal::session_from_file_name(&file_name) {
            Some(session) => crate::sched::shard_of(&session, shards),
            None => 0,
        };
        if owner != shard {
            continue;
        }
        recover_file(server, config, &file_name, &path, &mut report);
    }
    report
}

fn recover_file(
    server: &mut Server,
    config: &WalConfig,
    file_name: &str,
    path: &Path,
    report: &mut RecoveryReport,
) {
    let Some(session) = wal::session_from_file_name(file_name) else {
        report.sessions_skipped += 1;
        report
            .notes
            .push(format!("{file_name}: not a name this daemon writes; left in place"));
        return;
    };
    let scan = match wal::scan(path, &config.faults) {
        Ok(scan) => scan,
        Err(err @ (WalError::Foreign | WalError::UnsupportedVersion(_) | WalError::Empty)) => {
            report.sessions_skipped += 1;
            report.notes.push(format!("{file_name}: {err}; left in place"));
            return;
        }
        Err(err) => {
            report.sessions_skipped += 1;
            report.notes.push(format!("{file_name}: {err}"));
            return;
        }
    };
    if scan.truncated {
        report.torn_records += 1;
        // Physically drop the torn tail so the file is clean even if the
        // session turns out unrecoverable below.
        if let Err(e) = truncate_to(path, scan.valid_len) {
            report
                .notes
                .push(format!("{file_name}: could not truncate torn tail: {e}"));
        } else {
            report
                .notes
                .push(format!("{file_name}: truncated torn tail at byte {}", scan.valid_len));
        }
    }
    if scan.records.is_empty() {
        // Header only: the process died between creating the log and
        // recording the open. No state ever existed.
        let _ = std::fs::remove_file(path);
        report
            .notes
            .push(format!("{file_name}: header only (no records); removed"));
        return;
    }

    // Replay, with the server's WAL I/O suppressed.
    server.set_replaying(true);
    let replay = replay_records(server, &session, &scan.records, report);
    server.set_replaying(false);

    let open_line = match replay {
        Ok(open_line) => open_line,
        Err(why) => {
            report.sessions_skipped += 1;
            report.notes.push(format!("{file_name}: {why}; left in place"));
            return;
        }
    };
    if server.session_mut(&session).is_none() {
        // The log faithfully replays to a closed (or engine-killed)
        // session: nothing is live, nothing to keep.
        let _ = std::fs::remove_file(path);
        report
            .notes
            .push(format!("{file_name}: replays to a closed session; removed"));
        return;
    }
    let tail_records = scan
        .records
        .iter()
        .rev()
        .take_while(|r| matches!(r, Record::Frame(_)))
        .count() as u64;
    match SessionWal::resume(config, &session, &open_line, scan.valid_len, tail_records) {
        Ok(wal) => {
            server.attach_wal(&session, wal);
            server.note_recovered();
            report.sessions_recovered += 1;
        }
        Err(e) => {
            report.sessions_skipped += 1;
            report
                .notes
                .push(format!("{file_name}: recovered but could not reattach log: {e}"));
        }
    }
}

/// Replays one session's records. Returns the session's `open` line
/// (needed to resume the log handle) or a reason the file cannot be
/// replayed.
fn replay_records(
    server: &mut Server,
    session: &str,
    records: &[Record],
    report: &mut RecoveryReport,
) -> Result<String, String> {
    let mut open_line: Option<String> = None;
    for record in records {
        match record {
            Record::Frame(line) => {
                let frame = Json::parse(line)
                    .map_err(|e| format!("unparseable logged frame: {e}"))?;
                if open_line.is_none() {
                    if frame.get("op").and_then(|v| v.as_str()) != Some("open") {
                        return Err("first record is not an open frame".to_string());
                    }
                    open_line = Some(line.clone());
                    let response = server.handle_frame(&frame);
                    if response.get("ok") != Some(&Json::Bool(true)) {
                        return Err(format!(
                            "open refused on replay: {}",
                            response.render()
                        ));
                    }
                } else {
                    // Refused frames refused originally too (replay is
                    // the same deterministic dispatch); no check needed.
                    server.handle_frame(&frame);
                }
                report.frames_replayed += 1;
            }
            Record::Snapshot(snap) => {
                let frame = Json::parse(&snap.open_line)
                    .map_err(|e| format!("unparseable open line in snapshot record: {e}"))?;
                open_line = Some(snap.open_line.clone());
                let response = server.handle_frame(&frame);
                if response.get("ok") != Some(&Json::Bool(true)) {
                    return Err(format!("open refused on replay: {}", response.render()));
                }
                // Program swaps precede the state restore: the engine
                // snapshot carries no program, and `restore` resumes
                // against whatever program the session runs *now*.
                // Replaying every reload in order also re-interns the
                // exact symbol sequence the original session saw.
                for reload in &snap.reloads {
                    let frame = Json::parse(reload)
                        .map_err(|e| format!("unparseable logged reload: {e}"))?;
                    let response = server.handle_frame(&frame);
                    if response.get("ok") != Some(&Json::Bool(true)) {
                        return Err(format!(
                            "reload refused on replay: {}",
                            response.render()
                        ));
                    }
                    report.frames_replayed += 1;
                }
                let snapshot = Snapshot::from_bytes(&snap.snapshot)
                    .map_err(|e| format!("bad engine snapshot in record: {e}"))?;
                let live = server
                    .session_mut(session)
                    .ok_or_else(|| "open replay did not create the session".to_string())?;
                live.engine
                    .restore(&snapshot)
                    .map_err(|e| format!("snapshot restore failed: {e}"))?;
                live.injected_adds = snap.injected_adds;
                live.injected_removes = snap.injected_removes;
                // Queued-but-undrained injects re-enter through the
                // normal inject path (and re-mirror as pendings).
                for pending in &snap.pending {
                    let frame = Json::parse(pending)
                        .map_err(|e| format!("unparseable pending inject: {e}"))?;
                    server.handle_frame(&frame);
                    report.frames_replayed += 1;
                }
            }
        }
    }
    open_line.ok_or_else(|| "no open frame in log".to_string())
}

fn truncate_to(path: &Path, len: u64) -> std::io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_data()
}

/// Convenience for tests and the crash proof: the fingerprint a
/// recovered session should be compared with (re-exported so callers do
/// not need the protocol module).
pub fn fingerprint(server: &mut Server, session: &str) -> Option<String> {
    server
        .session_mut(session)
        .map(|s| protocol::fingerprint_hex(s.engine.wm()))
}
