//! Per-session write-ahead log: the durability layer under
//! `parulel serve`.
//!
//! Every accepted state-mutating frame (`open`/`inject`/`step`/`run`/
//! `restore`/`close`) is appended to the owning session's log *before*
//! it is applied, as a length-prefixed, CRC-checksummed record. Because
//! the protocol core is deterministic, replaying the surviving records
//! through the same [`crate::Server::handle_frame`] path rebuilds the
//! exact pre-crash session — the determinism suite's fingerprint
//! machinery makes that a checkable property, not a hope.
//!
//! ## File format
//!
//! ```text
//! header:  "PWAL" magic │ u32 version (currently 1)
//! record:  u32 body_len │ u32 crc32(body) │ body
//! body:    u8 kind │ payload
//!   kind 1 (frame):    payload = one rendered protocol line (UTF-8)
//!   kind 2 (snapshot): payload = SnapshotRecord (see below)
//! ```
//!
//! All integers are little-endian. A torn trailing record — a partial
//! write at the crash point — fails its length or CRC check; the
//! scanner stops there and reports the last valid byte offset so
//! recovery can truncate the tail instead of replaying garbage. A file
//! that does not start with the magic was written by some other program
//! and is refused outright ([`WalError::Foreign`]).
//!
//! ## Compaction
//!
//! A snapshot record captures the whole session — the original `open`
//! frame (program, policy, budgets), the engine's snapshot-v2 bytes,
//! lifetime inject counters, and any still-queued inject frames.
//! Compaction atomically rewrites the log as `header + snapshot record`
//! (write to a temp file, fsync, rename), so the replay tail restarts
//! empty and the log stays bounded.
//!
//! ## Sync policy
//!
//! [`SyncPolicy`] maps the `--wal-sync` flag: `always` fsyncs after
//! every append (survives power loss, slowest), `interval` fsyncs at
//! most once per period (bounded loss window), `never` leaves flushing
//! to the OS (survives process death — the kill -9 proof — but not
//! power loss).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

#[cfg(feature = "fault-inject")]
pub use parulel_engine::faults::WalFaults;

/// No-op stand-in compiled when the `fault-inject` feature is off; the
/// real injection points live in `parulel_engine::faults::WalFaults`.
#[cfg(not(feature = "fault-inject"))]
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalFaults;

#[cfg(not(feature = "fault-inject"))]
impl WalFaults {
    /// No faults (the only value this stand-in has).
    pub fn none() -> Self {
        WalFaults
    }
    /// Full length — writes are never torn without the feature.
    pub fn torn_write_len(&self, _append: u64, len: usize) -> usize {
        len
    }
    /// Full length — reads are never short without the feature.
    pub fn short_read_len(&self, _record: u64, len: usize) -> usize {
        len
    }
}

/// The 4-byte magic prefix of every WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"PWAL";
/// Current WAL wire-format version.
pub const WAL_VERSION: u32 = 1;
const HEADER_LEN: u64 = 8;

const KIND_FRAME: u8 = 1;
const KIND_SNAPSHOT: u8 = 2;

/// How `--wal-sync` maps onto fsync behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every appended record.
    Always,
    /// fsync at most once per this period (checked on append).
    Interval(Duration),
    /// Never fsync; the OS flushes when it likes.
    Never,
}

impl SyncPolicy {
    /// Parses the `--wal-sync` flag value.
    pub fn parse(s: &str) -> Result<SyncPolicy, String> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "interval" => Ok(SyncPolicy::Interval(Duration::from_millis(100))),
            "never" => Ok(SyncPolicy::Never),
            other => Err(format!(
                "unknown --wal-sync '{other}' (want always|interval|never)"
            )),
        }
    }

    /// The flag spelling (for status frames).
    pub fn tag(&self) -> &'static str {
        match self {
            SyncPolicy::Always => "always",
            SyncPolicy::Interval(_) => "interval",
            SyncPolicy::Never => "never",
        }
    }
}

/// Durability configuration (absent ⇒ the daemon runs exactly as
/// before, nothing touches disk).
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Directory holding one `<hex(session)>.wal` file per live session.
    pub dir: PathBuf,
    /// fsync policy for appends.
    pub sync: SyncPolicy,
    /// Compact (snapshot + truncate) a session's log after this many
    /// appended frame records. 0 disables automatic compaction.
    pub snapshot_every: u64,
    /// Deterministic I/O fault injection (no-op without the
    /// `fault-inject` feature).
    pub faults: WalFaults,
}

impl WalConfig {
    /// Durability under `dir` with the given sync policy and the default
    /// compaction period (64 frames).
    pub fn new(dir: impl Into<PathBuf>, sync: SyncPolicy) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            sync,
            snapshot_every: 64,
            faults: WalFaults::none(),
        }
    }
}

/// Why a WAL file could not be read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// The file does not start with [`WAL_MAGIC`] — it was recorded by a
    /// different program and must not be replayed.
    Foreign,
    /// The version field names a format this build cannot read.
    UnsupportedVersion(u32),
    /// The file is empty (no header at all).
    Empty,
    /// An I/O error while reading.
    Io(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Foreign => {
                write!(f, "not a parulel WAL (bad magic); refusing to replay it")
            }
            WalError::UnsupportedVersion(v) => write!(
                f,
                "unsupported WAL version {v} (this build reads {WAL_VERSION})"
            ),
            WalError::Empty => write!(f, "zero-length WAL file (no header)"),
            WalError::Io(e) => write!(f, "WAL read failed: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

/// One decoded WAL record.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A rendered protocol frame, replayed through `handle_frame`.
    Frame(String),
    /// A compaction point: the full session state at that moment.
    Snapshot(SnapshotRecord),
}

/// The payload of a compaction record: everything needed to rebuild the
/// session without the frames that preceded it.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotRecord {
    /// The session's original `open` frame (program, policy, matcher,
    /// budgets), rendered.
    pub open_line: String,
    /// Engine state in the versioned snapshot wire format
    /// ([`parulel_engine::Snapshot::to_bytes`]).
    pub snapshot: Vec<u8>,
    /// Lifetime WMEs asserted through `inject` at the capture point.
    pub injected_adds: u64,
    /// Lifetime WMEs retracted through `inject` at the capture point.
    pub injected_removes: u64,
    /// Inject frames accepted but not yet drained at the capture point,
    /// rendered; replayed through the normal inject path.
    pub pending: Vec<String>,
    /// Every accepted `reload` frame since `open`, rendered, in order.
    /// Replayed between the open and the snapshot restore: the engine
    /// snapshot captures state but not the program, and replaying the
    /// full reload sequence keeps symbol-interning order identical to
    /// the original run. Encoded as an optional tail so logs written
    /// before the verb existed still decode (as zero reloads).
    pub reloads: Vec<String>,
}

impl SnapshotRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_bytes(&mut out, self.open_line.as_bytes());
        put_bytes(&mut out, &self.snapshot);
        out.extend_from_slice(&self.injected_adds.to_le_bytes());
        out.extend_from_slice(&self.injected_removes.to_le_bytes());
        out.extend_from_slice(&(self.pending.len() as u32).to_le_bytes());
        for line in &self.pending {
            put_bytes(&mut out, line.as_bytes());
        }
        out.extend_from_slice(&(self.reloads.len() as u32).to_le_bytes());
        for line in &self.reloads {
            put_bytes(&mut out, line.as_bytes());
        }
        out
    }

    fn decode(bytes: &[u8]) -> Option<SnapshotRecord> {
        let mut pos = 0usize;
        let open_line = String::from_utf8(take_bytes(bytes, &mut pos)?.to_vec()).ok()?;
        let snapshot = take_bytes(bytes, &mut pos)?.to_vec();
        let injected_adds = take_u64(bytes, &mut pos)?;
        let injected_removes = take_u64(bytes, &mut pos)?;
        let take_lines = |pos: &mut usize| -> Option<Vec<String>> {
            let n = take_u32(bytes, pos)? as usize;
            if n > bytes.len() {
                return None; // corrupt count cannot demand a huge allocation
            }
            let mut lines = Vec::with_capacity(n);
            for _ in 0..n {
                lines.push(String::from_utf8(take_bytes(bytes, pos)?.to_vec()).ok()?);
            }
            Some(lines)
        };
        let pending = take_lines(&mut pos)?;
        // Optional tail: records written before `reload` existed end
        // right after the pendings.
        let reloads = if pos == bytes.len() {
            Vec::new()
        } else {
            take_lines(&mut pos)?
        };
        if pos != bytes.len() {
            return None;
        }
        Some(SnapshotRecord {
            open_line,
            snapshot,
            injected_adds,
            injected_removes,
            pending,
            reloads,
        })
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let end = pos.checked_add(4)?;
    let v = u32::from_le_bytes(bytes.get(*pos..end)?.try_into().ok()?);
    *pos = end;
    Some(v)
}

fn take_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let end = pos.checked_add(8)?;
    let v = u64::from_le_bytes(bytes.get(*pos..end)?.try_into().ok()?);
    *pos = end;
    Some(v)
}

fn take_bytes<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let n = take_u32(bytes, pos)? as usize;
    let end = pos.checked_add(n)?;
    let out = bytes.get(*pos..end)?;
    *pos = end;
    Some(out)
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. Hand-rolled —
/// the build is offline, and 20 lines beat a dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Session names are arbitrary protocol strings; file names are not.
/// Lower-case hex of the UTF-8 bytes keeps the mapping total and
/// reversible.
pub fn wal_file_name(session: &str) -> String {
    let mut out = String::with_capacity(session.len() * 2 + 4);
    for b in session.as_bytes() {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    out.push_str(".wal");
    out
}

/// Inverse of [`wal_file_name`]; `None` for names this daemon did not
/// generate.
pub fn session_from_file_name(file: &str) -> Option<String> {
    let hex = file.strip_suffix(".wal")?;
    if hex.is_empty() || hex.len() % 2 != 0 {
        return None;
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    let chars: Vec<char> = hex.chars().collect();
    for pair in chars.chunks(2) {
        let hi = pair[0].to_digit(16)?;
        let lo = pair[1].to_digit(16)?;
        bytes.push(((hi << 4) | lo) as u8);
    }
    String::from_utf8(bytes).ok()
}

/// What a scan of one WAL file yields: the decodable record prefix, the
/// byte offset where it ends, and whether a torn tail was dropped.
#[derive(Debug)]
pub struct ScanResult {
    /// Records decoded in order, up to the first corruption.
    pub records: Vec<Record>,
    /// Byte offset of the end of the last valid record (file header
    /// included) — the length to truncate to before appending again.
    pub valid_len: u64,
    /// True when bytes past `valid_len` were present but undecodable
    /// (a torn trailing record).
    pub truncated: bool,
}

/// Reads and validates `path`, stopping cleanly at the first torn or
/// corrupt record. Foreign files, unreadable headers, and empty files
/// are hard errors — they are never "partially replayed".
pub fn scan(path: &Path, faults: &WalFaults) -> Result<ScanResult, WalError> {
    let bytes = fs::read(path).map_err(|e| WalError::Io(e.to_string()))?;
    if bytes.is_empty() {
        return Err(WalError::Empty);
    }
    if bytes.len() < HEADER_LEN as usize || bytes[..4] != WAL_MAGIC {
        return Err(WalError::Foreign);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(WalError::UnsupportedVersion(version));
    }
    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut record_no = 0u64;
    while pos < bytes.len() {
        record_no += 1;
        let Some(record) = decode_record(&bytes, pos, record_no, faults) else {
            break;
        };
        let (rec, end) = record;
        records.push(rec);
        pos = end;
    }
    Ok(ScanResult {
        records,
        valid_len: pos as u64,
        truncated: pos < bytes.len(),
    })
}

/// Decodes the record starting at `pos`; `None` on any torn/corrupt
/// condition (short header, short body, CRC mismatch, bad kind, bad
/// payload).
fn decode_record(
    bytes: &[u8],
    pos: usize,
    record_no: u64,
    faults: &WalFaults,
) -> Option<(Record, usize)> {
    let mut p = pos;
    let body_len = take_u32(bytes, &mut p)? as usize;
    let want_crc = take_u32(bytes, &mut p)?;
    let end = p.checked_add(body_len)?;
    let mut body = bytes.get(p..end)?;
    // Short-read injection: the scanner sees only a prefix of the body,
    // which must fail the CRC exactly like a real short read.
    let seen = faults.short_read_len(record_no, body.len());
    if seen < body.len() {
        body = &body[..seen];
    }
    if body.is_empty() || crc32(body) != want_crc {
        return None;
    }
    let (kind, payload) = (body[0], &body[1..]);
    let rec = match kind {
        KIND_FRAME => Record::Frame(String::from_utf8(payload.to_vec()).ok()?),
        KIND_SNAPSHOT => Record::Snapshot(SnapshotRecord::decode(payload)?),
        _ => return None,
    };
    Some((rec, end))
}

/// The append handle for one live session's log.
pub struct SessionWal {
    path: PathBuf,
    file: File,
    sync: SyncPolicy,
    faults: WalFaults,
    last_sync: Instant,
    /// The session's `open` frame, kept for compaction records.
    pub open_line: String,
    /// Frame records appended since the last compaction (or creation).
    pub records_since_snapshot: u64,
    /// Total appends over this handle's lifetime (fault-injection
    /// coordinate).
    appends: u64,
    /// Bytes currently in the file (tracked, not stat'ed).
    pub bytes: u64,
    /// Compactions performed over this handle's lifetime.
    pub snapshots: u64,
}

impl SessionWal {
    /// Creates (truncating) the log for a fresh session and writes the
    /// header. The `open` line is retained for later compaction records
    /// but NOT appended — the caller logs it like any other frame.
    pub fn create(config: &WalConfig, session: &str, open_line: &str) -> io::Result<SessionWal> {
        fs::create_dir_all(&config.dir)?;
        let path = config.dir.join(wal_file_name(session));
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&WAL_MAGIC)?;
        file.write_all(&WAL_VERSION.to_le_bytes())?;
        Ok(SessionWal {
            path,
            file,
            sync: config.sync,
            faults: config.faults.clone(),
            last_sync: Instant::now(),
            open_line: open_line.to_string(),
            records_since_snapshot: 0,
            appends: 0,
            bytes: HEADER_LEN,
            snapshots: 0,
        })
    }

    /// Reattaches to an existing log after recovery: truncates any torn
    /// tail at `valid_len` and positions for appends. `tail_records` is
    /// how many frame records follow the last snapshot (so compaction
    /// scheduling carries over).
    pub fn resume(
        config: &WalConfig,
        session: &str,
        open_line: &str,
        valid_len: u64,
        tail_records: u64,
    ) -> io::Result<SessionWal> {
        let path = config.dir.join(wal_file_name(session));
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(valid_len)?;
        let mut wal = SessionWal {
            path,
            file,
            sync: config.sync,
            faults: config.faults.clone(),
            last_sync: Instant::now(),
            open_line: open_line.to_string(),
            records_since_snapshot: tail_records,
            appends: 0,
            bytes: valid_len,
            snapshots: 0,
        };
        wal.file.seek(SeekFrom::End(0))?;
        wal.sync()?;
        Ok(wal)
    }

    /// Appends one rendered protocol frame, then applies the sync
    /// policy. Must be called *before* the frame is applied to the
    /// session (log-before-apply).
    pub fn append_frame(&mut self, line: &str) -> io::Result<()> {
        let mut body = Vec::with_capacity(line.len() + 1);
        body.push(KIND_FRAME);
        body.extend_from_slice(line.as_bytes());
        self.append_record(&body)?;
        self.records_since_snapshot += 1;
        Ok(())
    }

    fn append_record(&mut self, body: &[u8]) -> io::Result<()> {
        self.appends += 1;
        let mut rec = Vec::with_capacity(body.len() + 8);
        rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(body).to_le_bytes());
        rec.extend_from_slice(body);
        // Torn-write injection: only a prefix of the record reaches the
        // file, exactly as if the process died mid-write.
        let n = self.faults.torn_write_len(self.appends, rec.len());
        self.file.write_all(&rec[..n])?;
        self.bytes += n as u64;
        self.maybe_sync()
    }

    fn maybe_sync(&mut self) -> io::Result<()> {
        match self.sync {
            SyncPolicy::Always => self.sync(),
            SyncPolicy::Interval(period) => {
                if self.last_sync.elapsed() >= period {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            SyncPolicy::Never => Ok(()),
        }
    }

    /// fsync the log (the `sync` protocol verb, and shutdown flushing).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Atomically compacts the log to `header + snapshot record`: the
    /// replay tail restarts empty. Written to a temp file, fsynced, and
    /// renamed over the live log, so a crash mid-compaction leaves
    /// either the old log or the new one — never a hybrid.
    pub fn compact(&mut self, snapshot: &SnapshotRecord) -> io::Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        let mut body = Vec::new();
        body.push(KIND_SNAPSHOT);
        body.extend_from_slice(&snapshot.encode());
        let mut out = Vec::new();
        out.extend_from_slice(&WAL_MAGIC);
        out.extend_from_slice(&WAL_VERSION.to_le_bytes());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.bytes = out.len() as u64;
        self.records_since_snapshot = 0;
        self.snapshots += 1;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// The log's path (recovery bookkeeping, tests).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Deletes the log file (session closed or dead — there is nothing
    /// left to recover).
    pub fn delete(self) -> io::Result<()> {
        fs::remove_file(&self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("parulel-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config(dir: &Path) -> WalConfig {
        WalConfig::new(dir, SyncPolicy::Never)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn file_name_roundtrip() {
        for name in ["s1", "closure-7", "weird/..name", "héllo"] {
            let file = wal_file_name(name);
            assert!(!file.contains('/'), "{file}");
            assert_eq!(session_from_file_name(&file).as_deref(), Some(name));
        }
        assert_eq!(session_from_file_name("nothex!.wal"), None);
        assert_eq!(session_from_file_name(".wal"), None);
        assert_eq!(session_from_file_name("abc.snap"), None);
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let cfg = config(&dir);
        let mut wal = SessionWal::create(&cfg, "s1", "{\"op\":\"open\"}").unwrap();
        wal.append_frame("{\"op\":\"open\"}").unwrap();
        wal.append_frame("{\"op\":\"inject\",\"adds\":[1]}").unwrap();
        wal.sync().unwrap();
        let scan = scan(&dir.join(wal_file_name("s1")), &WalFaults::none()).unwrap();
        assert!(!scan.truncated);
        assert_eq!(
            scan.records,
            vec![
                Record::Frame("{\"op\":\"open\"}".into()),
                Record::Frame("{\"op\":\"inject\",\"adds\":[1]}".into()),
            ]
        );
        assert_eq!(scan.valid_len, wal.bytes);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut_point() {
        let dir = tmp_dir("torn");
        let cfg = config(&dir);
        let mut wal = SessionWal::create(&cfg, "s1", "o").unwrap();
        wal.append_frame("first").unwrap();
        let after_first = wal.bytes;
        wal.append_frame("second-record-with-more-bytes").unwrap();
        wal.sync().unwrap();
        let path = dir.join(wal_file_name("s1"));
        let full = fs::read(&path).unwrap();
        // Cut the file everywhere inside the second record: the first
        // must always survive, the second must always be dropped.
        for cut in (after_first as usize + 1)..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let scan = scan(&path, &WalFaults::none()).unwrap();
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, after_first, "cut at {cut}");
            assert!(scan.truncated, "cut at {cut}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_crc_stops_the_scan() {
        let dir = tmp_dir("crc");
        let cfg = config(&dir);
        let mut wal = SessionWal::create(&cfg, "s1", "o").unwrap();
        wal.append_frame("aaaa").unwrap();
        wal.append_frame("bbbb").unwrap();
        wal.sync().unwrap();
        let path = dir.join(wal_file_name("s1"));
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte of the second record.
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let scan = scan(&path, &WalFaults::none()).unwrap();
        assert_eq!(scan.records, vec![Record::Frame("aaaa".into())]);
        assert!(scan.truncated);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_empty_and_versioned_files_are_refused() {
        let dir = tmp_dir("foreign");
        let foreign = dir.join("aa.wal");
        fs::write(&foreign, b"I am some other program's file").unwrap();
        assert_eq!(scan(&foreign, &WalFaults::none()).unwrap_err(), WalError::Foreign);
        let empty = dir.join("bb.wal");
        fs::write(&empty, b"").unwrap();
        assert_eq!(scan(&empty, &WalFaults::none()).unwrap_err(), WalError::Empty);
        let vers = dir.join("cc.wal");
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&99u32.to_le_bytes());
        fs::write(&vers, &bytes).unwrap();
        assert_eq!(
            scan(&vers, &WalFaults::none()).unwrap_err(),
            WalError::UnsupportedVersion(99)
        );
        // Errors render with a clear reason.
        assert!(WalError::Foreign.to_string().contains("refusing"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_record_roundtrip_and_compaction() {
        let dir = tmp_dir("compact");
        let cfg = config(&dir);
        let mut wal = SessionWal::create(&cfg, "s1", "openline").unwrap();
        for i in 0..5 {
            wal.append_frame(&format!("frame-{i} with a realistically sized payload")).unwrap();
        }
        let fat = wal.bytes;
        let snap = SnapshotRecord {
            open_line: "openline".into(),
            snapshot: vec![1, 2, 3, 4, 5],
            injected_adds: 40,
            injected_removes: 2,
            pending: vec!["pending-inject".into()],
            reloads: vec!["reload-frame".into()],
        };
        wal.compact(&snap).unwrap();
        assert!(wal.bytes < fat);
        assert_eq!(wal.records_since_snapshot, 0);
        wal.append_frame("tail-frame").unwrap();
        wal.sync().unwrap();
        let scan = scan(&dir.join(wal_file_name("s1")), &WalFaults::none()).unwrap();
        assert!(!scan.truncated);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0], Record::Snapshot(snap));
        assert_eq!(scan.records[1], Record::Frame("tail-frame".into()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_reload_snapshot_records_decode_with_no_reloads() {
        // A record encoded before the `reload` verb existed ends right
        // after the pending lines; it must still decode.
        let mut old = Vec::new();
        put_bytes(&mut old, b"openline");
        put_bytes(&mut old, &[9, 9, 9]);
        old.extend_from_slice(&7u64.to_le_bytes());
        old.extend_from_slice(&1u64.to_le_bytes());
        old.extend_from_slice(&1u32.to_le_bytes());
        put_bytes(&mut old, b"pending-inject");
        let decoded = SnapshotRecord::decode(&old).unwrap();
        assert_eq!(decoded.open_line, "openline");
        assert_eq!(decoded.pending, vec!["pending-inject".to_string()]);
        assert!(decoded.reloads.is_empty());
        // Trailing garbage after a well-formed reload tail still refuses.
        let mut current = SnapshotRecord {
            reloads: vec!["reload-frame".into()],
            ..decoded
        }
        .encode();
        assert!(SnapshotRecord::decode(&current).is_some());
        current.push(0);
        assert!(SnapshotRecord::decode(&current).is_none());
    }

    #[test]
    fn sync_policy_parses() {
        assert_eq!(SyncPolicy::parse("always").unwrap(), SyncPolicy::Always);
        assert_eq!(SyncPolicy::parse("never").unwrap(), SyncPolicy::Never);
        assert!(matches!(
            SyncPolicy::parse("interval").unwrap(),
            SyncPolicy::Interval(_)
        ));
        assert!(SyncPolicy::parse("sometimes").is_err());
        assert_eq!(SyncPolicy::Always.tag(), "always");
    }
}
