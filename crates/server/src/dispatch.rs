//! The readiness-driven dispatcher: one `poll(2)` event loop feeding
//! the sharded scheduler.
//!
//! One thread owns every connection. It sleeps in `poll(2)` over the
//! listener, all connection sockets, and a self-pipe; it wakes only
//! when bytes arrive, a shard worker finishes a response, or a signal
//! lands (the handler writes the self-pipe — see
//! [`crate::transport::install_signal_handlers`]). There are **no
//! per-connection threads and no read timeouts**: ten thousand idle
//! connections cost zero wakeups.
//!
//! Frames are parsed off each connection's byte stream, assigned a
//! per-connection sequence number, and routed to shard inboxes via
//! [`Sched::submit`]. Workers answer through a completion queue (plus a
//! self-pipe poke); the dispatcher reorders completions back into
//! request order per connection before writing — responses on one
//! connection always come back in the order the requests went in, even
//! when frames fan out to different shards.
//!
//! The `poll(2)`/`pipe(2)` calls go through the same direct `extern
//! "C"` declarations the signal handling already uses (std links libc;
//! the build stays offline with zero new dependencies).

use crate::sched::{Reply, Sched, Submitted};
use crate::server::Server;
use crate::transport::{install_signal_handlers, register_signal_wake, signal_requested};
use parulel_engine::Json;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn pipe(fds: *mut i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
}

const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0x800;

/// Event-loop knobs.
#[derive(Clone, Debug, Default)]
pub struct EventLoopOpts {
    /// Fallback poll timeout. `None` (the default) blocks indefinitely —
    /// the self-pipe covers every wake source, so no periodic wakeup is
    /// needed; tests set a short interval to pin down shutdown-latency
    /// bounds without relying on signal delivery.
    pub poll_interval: Option<Duration>,
}

/// Worker→dispatcher completion channel: finished responses plus the
/// self-pipe poke that wakes `poll(2)`.
struct Completions {
    queue: Mutex<Vec<(u64, u64, Option<String>)>>,
    wake_fd: i32,
}

impl Completions {
    fn push(&self, conn: u64, seq: u64, response: Option<String>) {
        self.queue
            .lock()
            .expect("completion queue poisoned")
            .push((conn, seq, response));
        // A full pipe already guarantees a pending wakeup; EAGAIN is
        // success here.
        let byte = b"w";
        unsafe {
            let _ = write(self.wake_fd, byte.as_ptr(), 1);
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, String),
}

impl Listener {
    fn fd(&self) -> i32 {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l, _) => l.as_raw_fd(),
        }
    }

    fn accept(&self) -> io::Result<Sock> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                let _ = stream.set_nodelay(true);
                stream.set_nonblocking(true)?;
                Ok(Sock::Tcp(stream))
            }
            Listener::Unix(l, _) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(true)?;
                Ok(Sock::Unix(stream))
            }
        }
    }
}

enum Sock {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Sock {
    fn fd(&self) -> i32 {
        match self {
            Sock::Tcp(s) => s.as_raw_fd(),
            Sock::Unix(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            Sock::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            Sock::Unix(s) => s.write(buf),
        }
    }
}

/// One connection's dispatcher-side state.
struct Conn {
    sock: Sock,
    /// Partial input line (bytes up to the last unterminated `\n`).
    rbuf: Vec<u8>,
    /// Bytes queued for write (response frames, newline-terminated).
    wbuf: Vec<u8>,
    /// Next sequence number assigned to an incoming frame.
    next_seq: u64,
    /// Next sequence number whose response may be written.
    next_flush: u64,
    /// Responses that completed out of order, keyed by sequence.
    pending: BTreeMap<u64, String>,
    /// Read side saw EOF; the connection drops once `wbuf` drains and
    /// no responses are outstanding.
    eof: bool,
}

impl Conn {
    fn new(sock: Sock) -> Conn {
        Conn {
            sock,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            next_seq: 0,
            next_flush: 0,
            pending: BTreeMap::new(),
            eof: false,
        }
    }

    fn outstanding(&self) -> bool {
        self.next_flush < self.next_seq || !self.wbuf.is_empty()
    }

    /// Files a completed response and flushes every consecutively-ready
    /// response into the write buffer (per-connection request order).
    fn complete(&mut self, seq: u64, response: Option<String>) {
        self.pending.insert(seq, response.unwrap_or_default());
        while let Some(r) = self.pending.remove(&self.next_flush) {
            if !r.is_empty() {
                self.wbuf.extend_from_slice(r.as_bytes());
                self.wbuf.push(b'\n');
            }
            self.next_flush += 1;
        }
    }

    /// Writes as much of `wbuf` as the socket accepts right now.
    fn flush(&mut self) -> io::Result<()> {
        while !self.wbuf.is_empty() {
            match self.sock.write(&self.wbuf) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.wbuf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

fn make_pipe() -> io::Result<(i32, i32)> {
    let mut fds = [0i32; 2];
    if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
        return Err(io::Error::last_os_error());
    }
    for fd in fds {
        unsafe {
            fcntl(fd, F_SETFL, O_NONBLOCK);
        }
    }
    Ok((fds[0], fds[1]))
}

/// Serves `listener` through `sched` until a `shutdown` frame or
/// SIGTERM/SIGINT. The scheduler is consumed: its workers are joined
/// before this returns.
fn event_loop(mut sched: Sched, listener: Listener, opts: EventLoopOpts) -> io::Result<()> {
    install_signal_handlers();
    let (pipe_r, pipe_w) = make_pipe()?;
    register_signal_wake(pipe_w);
    let completions = Arc::new(Completions {
        queue: Mutex::new(Vec::new()),
        wake_fd: pipe_w,
    });
    let timeout = opts
        .poll_interval
        .map(|d| d.as_millis().clamp(1, i32::MAX as u128) as i32)
        .unwrap_or(-1);
    let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
    let mut next_conn = 0u64;
    let mut down = false;

    while !down {
        let mut fds = vec![
            PollFd {
                fd: pipe_r,
                events: POLLIN,
                revents: 0,
            },
            PollFd {
                fd: listener.fd(),
                events: POLLIN,
                revents: 0,
            },
        ];
        let mut ids = Vec::with_capacity(conns.len());
        for (&id, conn) in &conns {
            let mut events = 0i16;
            if !conn.eof {
                events |= POLLIN;
            }
            if !conn.wbuf.is_empty() {
                events |= POLLOUT;
            }
            fds.push(PollFd {
                fd: conn.sock.fd(),
                events,
                revents: 0,
            });
            ids.push(id);
        }
        // EINTR and timeouts both fall through to the same recheck.
        unsafe {
            poll(fds.as_mut_ptr(), fds.len() as u64, timeout);
        }

        drain_pipe(pipe_r);
        deliver(&completions, &mut conns);

        if signal_requested() {
            // Graceful signal shutdown: drain runs (their responses
            // flush below), persist, stop.
            let merged = sched.shutdown(&Json::obj().set("op", "shutdown"));
            if let Some(persisted) = merged.get("persisted").and_then(Json::as_f64) {
                if persisted > 0.0 {
                    eprintln!(
                        "parulel serve: signal received; persisted {} session(s)",
                        persisted as u64
                    );
                }
            }
            deliver(&completions, &mut conns);
            break;
        }

        // Accept every pending connection (readiness-driven: only when
        // poll reported the listener, but re-checking is harmless and
        // keeps the loop simple after spurious wakes).
        loop {
            match listener.accept() {
                Ok(sock) => {
                    conns.insert(next_conn, Conn::new(sock));
                    next_conn += 1;
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::Interrupted =>
                {
                    break
                }
                Err(_) => break,
            }
        }

        // Readable connections: pull bytes, split frames, route.
        let mut dead: Vec<u64> = Vec::new();
        for (slot, &id) in ids.iter().enumerate() {
            let revents = fds[slot + 2].revents;
            if revents == 0 {
                continue;
            }
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if revents & (POLLIN | POLLERR | POLLHUP) != 0 && !conn.eof {
                match read_frames(id, conn, &sched, &completions) {
                    ReadOutcome::Open => {}
                    ReadOutcome::Closed => {
                        if !conn.outstanding() {
                            dead.push(id);
                        }
                    }
                    ReadOutcome::Shutdown(reply) => {
                        let merged = sched.shutdown(&Json::obj().set("op", "shutdown"));
                        reply(Some(merged.render()));
                        deliver(&completions, &mut conns);
                        down = true;
                        break;
                    }
                }
            }
        }
        if down {
            break;
        }
        for id in dead {
            conns.remove(&id);
        }

        // Deliver anything workers finished while we were reading, then
        // flush writable connections.
        deliver(&completions, &mut conns);
        let mut dropped: Vec<u64> = Vec::new();
        for (&id, conn) in conns.iter_mut() {
            if conn.flush().is_err() {
                dropped.push(id);
                continue;
            }
            if conn.eof && !conn.outstanding() {
                dropped.push(id);
            }
        }
        for id in dropped {
            conns.remove(&id);
        }
    }

    // Shutdown path: workers are already joined by `sched.shutdown`.
    // Best-effort final flush of everything still buffered (the
    // shutdown response itself, drained-run responses on neighbor
    // connections), bounded so a stuck peer cannot wedge the exit.
    deliver(&completions, &mut conns);
    let deadline = Instant::now() + Duration::from_secs(3);
    while Instant::now() < deadline {
        let mut pending = false;
        for conn in conns.values_mut() {
            let _ = conn.flush();
            if !conn.wbuf.is_empty() {
                pending = true;
            }
        }
        if !pending {
            break;
        }
        thread::sleep(Duration::from_millis(5));
    }
    register_signal_wake(-1);
    unsafe {
        close(pipe_r);
        close(pipe_w);
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

fn drain_pipe(fd: i32) {
    let mut buf = [0u8; 256];
    loop {
        let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
        if n <= 0 || (n as usize) < buf.len() {
            break;
        }
    }
}

fn deliver(completions: &Completions, conns: &mut BTreeMap<u64, Conn>) {
    let batch: Vec<(u64, u64, Option<String>)> = {
        let mut queue = completions.queue.lock().expect("completion queue poisoned");
        std::mem::take(&mut *queue)
    };
    for (conn_id, seq, response) in batch {
        // Responses for connections that died in flight are dropped.
        if let Some(conn) = conns.get_mut(&conn_id) {
            conn.complete(seq, response);
        }
    }
}

enum ReadOutcome {
    Open,
    Closed,
    Shutdown(Reply),
}

/// Reads whatever the socket has, splits complete lines, and submits
/// each to the scheduler with this connection's next sequence number.
fn read_frames(
    id: u64,
    conn: &mut Conn,
    sched: &Sched,
    completions: &Arc<Completions>,
) -> ReadOutcome {
    let mut buf = [0u8; 4096];
    loop {
        match conn.sock.read(&mut buf) {
            Ok(0) => {
                conn.eof = true;
                return ReadOutcome::Closed;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&buf[..n]);
                // Split complete lines out of the read buffer.
                while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
                    let line_bytes: Vec<u8> = conn.rbuf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line_bytes[..pos]).into_owned();
                    if line.trim().is_empty() {
                        continue;
                    }
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    let sink = Arc::clone(completions);
                    let reply: Reply = Box::new(move |response| sink.push(id, seq, response));
                    match sched.submit(&line, reply) {
                        Submitted::Dispatched => {}
                        Submitted::Shutdown(reply) => return ReadOutcome::Shutdown(reply),
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Open,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.eof = true;
                return ReadOutcome::Closed;
            }
        }
    }
}

/// Binds `addr` and serves TCP through the sharded scheduler until a
/// `shutdown` frame or SIGTERM/SIGINT. Blocks the caller.
pub fn serve_sched_tcp(
    servers: Vec<Server>,
    quantum: u64,
    inbox_cap: usize,
    addr: &str,
    opts: EventLoopOpts,
) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let sched = Sched::start(servers, quantum, inbox_cap);
    event_loop(sched, Listener::Tcp(listener), opts)?;
    Ok(bound)
}

/// [`serve_sched_tcp`] on a background thread; returns the bound
/// address and the dispatcher thread's handle (tests and benches).
pub fn spawn_sched_tcp(
    servers: Vec<Server>,
    quantum: u64,
    inbox_cap: usize,
    addr: &str,
    opts: EventLoopOpts,
) -> io::Result<(SocketAddr, thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = thread::spawn(move || {
        let sched = Sched::start(servers, quantum, inbox_cap);
        let _ = event_loop(sched, Listener::Tcp(listener), opts);
    });
    Ok((bound, handle))
}

/// Binds a Unix socket at `path` (replacing a stale file) and serves it
/// through the sharded scheduler. Blocks the caller.
pub fn serve_sched_unix(
    servers: Vec<Server>,
    quantum: u64,
    inbox_cap: usize,
    path: &str,
    opts: EventLoopOpts,
) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let sched = Sched::start(servers, quantum, inbox_cap);
    event_loop(sched, Listener::Unix(listener, path.to_string()), opts)
}
