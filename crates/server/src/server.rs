//! The daemon core: a session table and a synchronous frame handler.
//!
//! [`Server::handle_line`] is the whole protocol — transports
//! (stdin/stdout, TCP, Unix socket) are thin line pumps around it, and
//! tests drive it directly. One request frame in, one response frame
//! out; the server never blocks inside a handler (injects queue, runs
//! are bounded by the session's budgets/cycle limit).
//!
//! Graceful degradation: verbs that advance a session's engine run
//! behind `catch_unwind`. A budget trip or RHS failure surfaces as a
//! structured `engine` error frame and removes that one session; a panic
//! that somehow escapes the kernel's own RHS isolation is caught here
//! and does the same. The daemon itself never dies on a frame.
//!
//! Durability (optional, [`Server::with_wal`]): every accepted mutating
//! frame is appended to the owning session's write-ahead log *before* it
//! is applied. Because the core is deterministic, replaying the log
//! through this same dispatch path rebuilds the exact session — that is
//! the whole recovery story (see [`crate::recovery`]). During replay the
//! [`Server`] runs with WAL I/O suppressed so recovery cannot re-log
//! what it replays.

use crate::protocol::{self, kind, ok_frame, Failure};
use crate::session::{engine_failure, Session};
use crate::wal::{SessionWal, SnapshotRecord, WalConfig};
use parulel_core::Delta;
use parulel_engine::{
    Budgets, Engine, EngineOptions, EvalMode, FiringPolicy, GuardMode, Json, MatcherKind,
    MetricsLevel, Snapshot, Strategy,
};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server-wide policy knobs (CLI flags map onto this).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Admission control: `open` beyond this many live sessions is
    /// refused with an `admission` error.
    pub max_sessions: usize,
    /// Per-session inject-queue capacity, in WME changes.
    pub inject_queue: usize,
    /// Budgets applied to every session unless its `open` frame
    /// overrides them.
    pub default_budgets: Budgets,
    /// Cycle limit per `run` for every session unless overridden.
    pub max_cycles: u64,
    /// Observability level for session engines.
    pub metrics: MetricsLevel,
    /// Capacity of each session's structured trace-event ring.
    pub trace_ring: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            inject_queue: 1024,
            default_budgets: Budgets::unlimited(),
            max_cycles: 1_000_000,
            metrics: MetricsLevel::Rules,
            trace_ring: 4096,
        }
    }
}

/// Verbs that mutate session state and therefore hit the WAL
/// (log-before-apply). `open` is handled separately: its log file does
/// not exist until the open is accepted.
const MUTATING_VERBS: [&str; 7] = [
    "inject",
    "step",
    "run",
    "run-to-fixpoint",
    "restore",
    "reload",
    "close",
];

/// Bookkeeping for a parked cooperative run: a `run`/`run-to-fixpoint`
/// frame executing in step-quantum slices via
/// [`Server::handle_line_coop`] / [`Server::resume_run`].
struct ActiveRun {
    /// The request's verb (`run` or `run-to-fixpoint`), echoed in error
    /// frames exactly as the blocking path would.
    op: String,
    /// Injects drained when the run was admitted.
    drained: usize,
    /// The run-level cycle cap (the session's `max_cycles`), enforced
    /// across slices.
    cap: u64,
    /// Cycles executed by completed slices.
    cycles: u64,
    /// Firings by completed slices.
    firings: u64,
    /// When the run was admitted. The wall-clock budget deadline is
    /// measured from here — *including* time spent parked — so a sliced
    /// run sees the same deadline as an uninterrupted one.
    started: Instant,
}

/// The result of [`Server::handle_line_coop`].
pub enum Handled {
    /// The frame completed synchronously; `None` means a skipped blank
    /// line (exactly [`Server::handle_line`]'s contract).
    Done(Option<String>),
    /// The frame started a cooperative run on the named session. The
    /// caller owns driving it: call [`Server::resume_run`] with a
    /// quantum until it yields the response frame.
    Parked(String),
}

/// The daemon core. See the [module docs](self).
pub struct Server {
    config: ServerConfig,
    /// `BTreeMap` so every listing renders in deterministic name order.
    sessions: BTreeMap<String, Session>,
    /// Live sessions admitted against `config.max_sessions`. Shards of
    /// one daemon share a single gauge ([`Server::share_admission`]) so
    /// the limit stays global and a session closed on any shard frees
    /// its slot immediately — `open` admission never counts
    /// closed-but-not-yet-reaped sessions.
    admission: Arc<AtomicUsize>,
    /// Parked cooperative runs (same keys as `sessions` while parked).
    runs: BTreeMap<String, ActiveRun>,
    peak_sessions: usize,
    frames: u64,
    errors: u64,
    /// Shared so transports can check for shutdown without taking a
    /// lock around the whole server.
    shutdown: Arc<AtomicBool>,
    /// Durability configuration; `None` means the daemon runs exactly as
    /// before and nothing below touches disk.
    wal: Option<WalConfig>,
    /// One log handle per live session (same keys as `sessions` when
    /// durability is on).
    wals: BTreeMap<String, SessionWal>,
    /// True while recovery replays logged frames: suppresses all WAL
    /// I/O so replay cannot re-log (or compact, or delete) what it
    /// replays.
    replaying: bool,
    /// Lifetime WAL records appended.
    wal_records: u64,
    /// Lifetime compactions performed.
    wal_snapshots: u64,
    /// Sessions rebuilt by recovery at daemon start.
    recovered: usize,
}

impl Server {
    /// An empty server under `config`, no durability.
    pub fn new(config: ServerConfig) -> Server {
        Server {
            config,
            sessions: BTreeMap::new(),
            admission: Arc::new(AtomicUsize::new(0)),
            runs: BTreeMap::new(),
            peak_sessions: 0,
            frames: 0,
            errors: 0,
            shutdown: Arc::new(AtomicBool::new(false)),
            wal: None,
            wals: BTreeMap::new(),
            replaying: false,
            wal_records: 0,
            wal_snapshots: 0,
            recovered: 0,
        }
    }

    /// An empty server with durability: accepted mutating frames are
    /// write-ahead logged under `wal.dir` and sessions survive process
    /// death (run [`crate::recovery::recover`] before serving to pick
    /// survivors back up).
    pub fn with_wal(config: ServerConfig, wal: WalConfig) -> Server {
        let mut server = Server::new(config);
        server.wal = Some(wal);
        server
    }

    /// The durability configuration, if any.
    pub fn wal_config(&self) -> Option<&WalConfig> {
        self.wal.as_ref()
    }

    /// Toggles replay mode (recovery only): while on, the dispatch path
    /// applies frames without any WAL I/O.
    pub(crate) fn set_replaying(&mut self, on: bool) {
        self.replaying = on;
    }

    /// Direct session access for recovery (snapshot restore, counter
    /// reinstatement).
    pub(crate) fn session_mut(&mut self, name: &str) -> Option<&mut Session> {
        self.sessions.get_mut(name)
    }

    /// Attaches a resumed log handle to a recovered session.
    pub(crate) fn attach_wal(&mut self, name: &str, wal: SessionWal) {
        self.wals.insert(name.to_string(), wal);
    }

    /// Bumps the recovered-session counter (reported in `ping`).
    pub(crate) fn note_recovered(&mut self) {
        self.recovered += 1;
    }

    /// True once a `shutdown` frame has been accepted; transports stop
    /// pumping when they see it.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// A shared handle on the shutdown flag: transports clone it once
    /// per connection and poll it lock-free instead of locking the
    /// server just to check for shutdown.
    pub fn shutdown_signal(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The shared live-session gauge (admission control state).
    pub fn admission_gauge(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.admission)
    }

    /// Makes this server admit sessions against `gauge` instead of its
    /// private one. The scheduler shares one gauge (and one shutdown
    /// flag, for symmetric transports) across every shard's server so
    /// `max_sessions` bounds the *daemon*, not each shard. Call before
    /// any session is opened or recovered.
    pub fn share_admission(&mut self, gauge: Arc<AtomicUsize>, shutdown: Arc<AtomicBool>) {
        debug_assert!(self.sessions.is_empty());
        self.admission = gauge;
        self.shutdown = shutdown;
    }

    /// Live session count on this server (one shard's view when sharded).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Handles one protocol line. Returns `None` for blank lines (they
    /// are skipped, not errors), otherwise exactly one rendered response
    /// frame.
    pub fn handle_line(&mut self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        self.frames += 1;
        let response = match Json::parse(line) {
            Err(e) => Failure::new(kind::PARSE, format!("bad frame: {e}")).to_frame(None, None),
            Ok(frame) => self.handle_frame(&frame),
        };
        if response.get("ok") != Some(&Json::Bool(true)) {
            self.errors += 1;
        }
        Some(response.render())
    }

    /// Like [`handle_line`](Self::handle_line), but admits `run` /
    /// `run-to-fixpoint` frames as *cooperative* runs: the first
    /// `quantum` cycles execute immediately and, if the run has not
    /// finished, it parks — the caller round-robins it forward with
    /// [`resume_run`](Self::resume_run) while other frames interleave.
    /// `quantum == 0` disables slicing (byte-identical to
    /// [`handle_line`](Self::handle_line) for every frame).
    ///
    /// WAL ordering is unchanged: the run frame is logged before its
    /// first cycle executes (log-before-apply), regardless of how many
    /// slices the run takes.
    pub fn handle_line_coop(&mut self, line: &str, quantum: u64) -> Handled {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Handled::Done(None);
        }
        if quantum > 0 {
            if let Ok(frame) = Json::parse(trimmed) {
                let op = frame.get("op").and_then(|v| v.as_str()).unwrap_or("");
                if matches!(op, "run" | "run-to-fixpoint") {
                    if let Some(name) = frame
                        .get("session")
                        .and_then(|v| v.as_str())
                        .filter(|n| self.sessions.contains_key(*n) && !self.runs.contains_key(*n))
                    {
                        return self.begin_run(op.to_string(), name.to_string(), &frame, quantum);
                    }
                }
            }
        }
        Handled::Done(self.handle_line(line))
    }

    /// Admits a cooperative run: log-before-apply, drain the inject
    /// queue, record the run-level cycle cap, and execute the first
    /// slice.
    fn begin_run(&mut self, op: String, name: String, frame: &Json, quantum: u64) -> Handled {
        self.frames += 1;
        if let Err(failure) = self.wal_append(&op, &name, frame) {
            self.errors += 1;
            return Handled::Done(Some(failure.to_frame(Some(&op), Some(&name)).render()));
        }
        let session = self.sessions.get_mut(&name).expect("caller checked existence");
        let drained = session.drain();
        let cap = session.engine.max_cycles();
        self.runs.insert(
            name.clone(),
            ActiveRun {
                op,
                drained,
                cap,
                cycles: 0,
                firings: 0,
                started: Instant::now(),
            },
        );
        match self.resume_run(&name, quantum) {
            Some(response) => Handled::Done(Some(response)),
            None => Handled::Parked(name),
        }
    }

    /// Advances a parked cooperative run by at most `quantum` cycles.
    /// Returns the rendered response frame when the run completes (or
    /// kills its session), `None` while it stays parked. The response —
    /// success fields, engine-failure obituaries, panic isolation, WAL
    /// compaction, error accounting — is byte-identical to what the
    /// blocking `run` path produces.
    pub fn resume_run(&mut self, name: &str, quantum: u64) -> Option<String> {
        let mut run = self.runs.remove(name)?;
        let Some(mut session) = self.sessions.remove(name) else {
            // Unreachable by construction (a parked session cannot be
            // addressed by other frames), but degrade gracefully.
            self.errors += 1;
            let failure = Failure::new(kind::UNKNOWN_SESSION, format!("no session {name:?}"));
            return Some(failure.to_frame(Some(&run.op), Some(name)).render());
        };
        let slice = quantum.min(run.cap - run.cycles);
        let result = catch_unwind(AssertUnwindSafe(|| {
            session.engine.run_quantum(slice, run.started)
        }));
        let response = match result {
            Ok(Ok(outcome)) => {
                run.cycles += outcome.cycles;
                run.firings += outcome.firings;
                if !(outcome.halted || outcome.quiescent || run.cycles >= run.cap) {
                    self.sessions.insert(name.to_string(), session);
                    self.runs.insert(name.to_string(), run);
                    return None;
                }
                let status = if outcome.halted {
                    "halted"
                } else if outcome.quiescent {
                    "quiescent"
                } else {
                    "cycle-limit"
                };
                session.engine.note_run_end(run.cycles, run.firings, status);
                let response = ok_frame("run")
                    .set("session", name)
                    .set("drained", run.drained)
                    .set("status", status)
                    .set("cycles", run.cycles)
                    .set("firings", run.firings)
                    .set("wm", session.engine.wm().len())
                    .set("fingerprint", session.fingerprint());
                self.sessions.insert(name.to_string(), session);
                response
            }
            // Graceful degradation, mirroring `session_verb`: an engine
            // failure or escaped panic is the session's obituary — the
            // session is dropped, the daemon (and shard) lives.
            Ok(Err(e)) => engine_failure(&e).to_frame(Some(&run.op), Some(name)),
            Err(_) => {
                let mut failure = Failure::new(
                    kind::ENGINE,
                    format!("panic while serving {:?}; session {name:?} closed", run.op),
                );
                failure.engine = Some(("panic", 0));
                failure.closed = true;
                failure.to_frame(Some(&run.op), Some(name))
            }
        };
        if !self.sessions.contains_key(name) {
            self.admission.fetch_sub(1, Ordering::SeqCst);
        }
        self.wal_after_verb(name);
        if response.get("ok") != Some(&Json::Bool(true)) {
            self.errors += 1;
        }
        Some(response.render())
    }

    /// Session names with a parked cooperative run, in name order.
    pub fn parked_runs(&self) -> Vec<String> {
        self.runs.keys().cloned().collect()
    }

    /// Drives every parked cooperative run to completion (one unbounded
    /// slice each), returning `(session, response)` pairs in name order.
    /// The scheduler calls this on shutdown so in-flight runs finish at
    /// a cycle boundary and their responses are delivered *before* the
    /// server persists — a shutdown never abandons a run mid-flight.
    pub fn drain_runs(&mut self) -> Vec<(String, String)> {
        let names: Vec<String> = self.runs.keys().cloned().collect();
        names
            .into_iter()
            .filter_map(|name| {
                let response = self.resume_run(&name, u64::MAX)?;
                Some((name, response))
            })
            .collect()
    }

    /// Dispatches one parsed frame.
    pub fn handle_frame(&mut self, frame: &Json) -> Json {
        let op = match frame.get("op").and_then(|v| v.as_str()) {
            Some(op) => op.to_string(),
            None => {
                return Failure::new(kind::PROTOCOL, "missing string field \"op\"")
                    .to_frame(None, None)
            }
        };
        let session = frame
            .get("session")
            .and_then(|v| v.as_str())
            .map(str::to_string);
        let result = match op.as_str() {
            "ping" => {
                let mut response = ok_frame("ping");
                // Durability status only when the layer exists: with WAL
                // off the frame is byte-identical to every pinned golden
                // transcript.
                if let Some(cfg) = &self.wal {
                    response = response
                        .set("wal", cfg.sync.tag())
                        .set("recovered_sessions", self.recovered);
                }
                Ok(response)
            }
            "shutdown" => {
                self.shutdown.store(true, Ordering::SeqCst);
                // Safety net for direct `handle_line` users: in-flight
                // cooperative runs finish at a cycle boundary before
                // anything persists. (The scheduler drains first via
                // `drain_runs` so the responses are delivered too.)
                let _ = self.drain_runs();
                let closed = self.sessions.len();
                let mut response = ok_frame("shutdown").set("sessions_closed", closed);
                if self.wal.is_some() && !self.replaying {
                    // Protocol-initiated shutdown is still graceful:
                    // every live session is compacted to a snapshot
                    // record and fsynced, so it recovers at restart.
                    response = response.set("persisted", self.persist_all());
                }
                self.admission.fetch_sub(closed, Ordering::SeqCst);
                self.sessions.clear();
                self.wals.clear();
                Ok(response)
            }
            "sync" => self.sync_wal(session.as_deref()),
            "metrics" if session.is_none() => Ok(self.server_metrics()),
            "open" => self.open(frame, session.as_deref()),
            "inject" | "step" | "run" | "run-to-fixpoint" | "query" | "snapshot" | "restore"
            | "reload" | "metrics" | "trace" | "close" => {
                let name = match session.as_deref() {
                    Some(name) => name,
                    None => {
                        return Failure::new(kind::PROTOCOL, "missing string field \"session\"")
                            .to_frame(Some(&op), None)
                    }
                };
                // Log-before-apply: an accepted mutating frame must be
                // on disk before it can change the session. (Refused
                // frames are logged too — they refuse identically on
                // replay, because replay drives this same dispatch with
                // the same state.)
                if let Err(failure) = self.wal_append(&op, name, frame) {
                    return failure.to_frame(Some(&op), Some(name));
                }
                let result = self.session_verb(&op, name, frame);
                self.wal_after_verb(name);
                result
            }
            other => Err(Failure::new(kind::PROTOCOL, format!("unknown verb {other:?}"))),
        };
        match result {
            Ok(frame) => frame,
            Err(failure) => failure.to_frame(Some(&op), session.as_deref()),
        }
    }

    /// Appends a mutating session frame to its WAL, if durability is on,
    /// replay is not running, and the session exists (frames for unknown
    /// sessions mutate nothing and need no record).
    fn wal_append(&mut self, op: &str, name: &str, frame: &Json) -> Result<(), Failure> {
        if self.wal.is_none() || self.replaying || !MUTATING_VERBS.contains(&op) {
            return Ok(());
        }
        let Some(wal) = self.wals.get_mut(name) else {
            return Ok(());
        };
        wal.append_frame(&frame.render())
            .map_err(|e| Failure::new(kind::WAL, format!("WAL append failed: {e}")))?;
        self.wal_records += 1;
        Ok(())
    }

    /// Post-verb WAL lifecycle: a session that no longer exists (closed,
    /// or killed by an engine failure/panic) has nothing left to
    /// recover, so its log is deleted; a surviving session whose replay
    /// tail has grown past `snapshot_every` is compacted.
    fn wal_after_verb(&mut self, name: &str) {
        if self.wal.is_none() || self.replaying {
            return;
        }
        if !self.sessions.contains_key(name) {
            if let Some(wal) = self.wals.remove(name) {
                let _ = wal.delete();
            }
            return;
        }
        let every = self.wal.as_ref().map(|c| c.snapshot_every).unwrap_or(0);
        let due = every > 0
            && self
                .wals
                .get(name)
                .is_some_and(|w| w.records_since_snapshot >= every);
        if due {
            let _ = self.compact_session(name);
        }
    }

    /// Compacts one session's log to `header + snapshot record`.
    fn compact_session(&mut self, name: &str) -> std::io::Result<()> {
        let (Some(session), Some(wal)) = (self.sessions.get(name), self.wals.get_mut(name))
        else {
            return Ok(());
        };
        let record = SnapshotRecord {
            open_line: wal.open_line.clone(),
            snapshot: session.engine.checkpoint().to_bytes(),
            injected_adds: session.injected_adds,
            injected_removes: session.injected_removes,
            pending: session.pending_lines().to_vec(),
            reloads: session.reload_lines().to_vec(),
        };
        wal.compact(&record)?;
        self.wal_snapshots += 1;
        Ok(())
    }

    /// Compacts and fsyncs every live session's log (graceful shutdown:
    /// the `shutdown` frame, and SIGTERM/SIGINT on socket transports).
    /// Returns how many sessions were persisted.
    pub fn persist_all(&mut self) -> usize {
        // In-flight cooperative runs finish first: a snapshot captured
        // mid-run would persist half-run state while the logged run
        // frame replays *again* at recovery — the fingerprint would
        // diverge from an uninterrupted run.
        let _ = self.drain_runs();
        let names: Vec<String> = self.sessions.keys().cloned().collect();
        let mut persisted = 0;
        for name in names {
            if self.compact_session(&name).is_ok() {
                if let Some(wal) = self.wals.get_mut(&name) {
                    if wal.sync().is_ok() {
                        persisted += 1;
                    }
                }
            }
        }
        persisted
    }

    /// Signal-initiated graceful shutdown: marks the server down and,
    /// when durability is on, compacts and fsyncs every live session's
    /// WAL so the sessions recover at restart. Returns the number of
    /// sessions persisted.
    pub fn graceful_shutdown(&mut self) -> usize {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.drain_runs();
        if self.wal.is_some() {
            self.persist_all()
        } else {
            0
        }
    }

    /// The `sync` verb: fsync one session's log, or every log when no
    /// session is named. A protocol error when durability is off.
    fn sync_wal(&mut self, session: Option<&str>) -> Result<Json, Failure> {
        if self.wal.is_none() {
            return Err(Failure::new(
                kind::PROTOCOL,
                "durability is not enabled (start the daemon with --wal-dir)",
            ));
        }
        let sync_one = |wal: &mut SessionWal| {
            wal.sync()
                .map_err(|e| Failure::new(kind::WAL, format!("fsync failed: {e}")))
        };
        match session {
            Some(name) => {
                let wal = self.wals.get_mut(name).ok_or_else(|| {
                    Failure::new(kind::UNKNOWN_SESSION, format!("no session {name:?}"))
                })?;
                sync_one(wal)?;
                Ok(ok_frame("sync").set("session", name).set("synced", 1usize))
            }
            None => {
                let mut synced = 0usize;
                for wal in self.wals.values_mut() {
                    sync_one(wal)?;
                    synced += 1;
                }
                Ok(ok_frame("sync").set("synced", synced))
            }
        }
    }

    /// The server-level `metrics` frame (no `session` field): admission
    /// and throughput counters plus the live session list.
    fn server_metrics(&self) -> Json {
        let names: Vec<Json> = self.sessions.keys().map(|k| Json::from(k.as_str())).collect();
        let mut response = ok_frame("metrics")
            .set("sessions", self.sessions.len())
            .set("peak_sessions", self.peak_sessions)
            .set("max_sessions", self.config.max_sessions)
            .set("frames", self.frames)
            .set("errors", self.errors);
        // Durability counters only when the layer exists (golden
        // transcripts pin the WAL-off rendering byte-for-byte).
        if let Some(cfg) = &self.wal {
            response = response
                .set("wal_sync", cfg.sync.tag())
                .set("wal_records", self.wal_records)
                .set("wal_bytes", self.wals.values().map(|w| w.bytes).sum::<u64>())
                .set("wal_snapshots", self.wal_snapshots)
                .set("recovered_sessions", self.recovered);
        }
        response.set("session_list", names)
    }

    /// `open`: admission control, compile, build the engine, register
    /// the session.
    fn open(&mut self, frame: &Json, session: Option<&str>) -> Result<Json, Failure> {
        let name = session
            .ok_or_else(|| Failure::new(kind::PROTOCOL, "missing string field \"session\""))?;
        if name.is_empty() || name.len() > 128 {
            return Err(Failure::new(
                kind::PROTOCOL,
                "session names must be 1..=128 characters",
            ));
        }
        if self.sessions.contains_key(name) {
            return Err(Failure::new(
                kind::SESSION_EXISTS,
                format!("session {name:?} is already open"),
            ));
        }
        // Admission: reserve a slot on the (possibly shared) gauge. Only
        // *live* sessions hold slots — close/failure/shutdown release
        // them immediately, so churn against the limit never refuses an
        // open for a session that is already gone.
        if self
            .admission
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.config.max_sessions).then_some(n + 1)
            })
            .is_err()
        {
            return Err(Failure::new(
                kind::ADMISSION,
                format!(
                    "server at capacity ({} sessions); close one first",
                    self.config.max_sessions
                ),
            ));
        }
        let result = self.open_reserved(frame, name);
        if result.is_err() {
            self.admission.fetch_sub(1, Ordering::SeqCst);
        }
        result
    }

    /// The fallible tail of `open`, running with an admission slot
    /// already reserved (released by the caller on error).
    fn open_reserved(&mut self, frame: &Json, name: &str) -> Result<Json, Failure> {
        let source = protocol::req_str(frame, "program")?;
        let (program, wm) = parulel_lang::compile_with_wm(source)
            .map_err(|e| Failure::new(kind::COMPILE, e.to_string()))?;
        let policy = parse_policy(frame)?;
        let opts = self.engine_options(frame)?;
        let engine = Engine::with_policy(&program, wm, policy, opts);
        // Log-before-apply for `open`: the session's log is created and
        // the open frame recorded once the open is known to be accepted,
        // but before the session exists. If the disk refuses, so does
        // the open.
        if let (Some(cfg), false) = (self.wal.as_ref(), self.replaying) {
            let line = frame.render();
            let mut wal = SessionWal::create(cfg, name, &line)
                .map_err(|e| Failure::new(kind::WAL, format!("WAL create failed: {e}")))?;
            wal.append_frame(&line)
                .map_err(|e| Failure::new(kind::WAL, format!("WAL append failed: {e}")))?;
            self.wal_records += 1;
            self.wals.insert(name.to_string(), wal);
        }
        let response = ok_frame("open")
            .set("session", name)
            .set("policy", policy.tag())
            .set("rules", program.rules().len())
            .set("wm", engine.wm().len());
        self.sessions
            .insert(name.to_string(), Session::new(engine, self.config.inject_queue));
        // The gauge is the daemon-wide live count (it equals
        // `sessions.len()` when this server stands alone).
        self.peak_sessions = self.peak_sessions.max(self.admission.load(Ordering::SeqCst));
        Ok(response)
    }

    /// Builds the per-session [`EngineOptions`] from server defaults plus
    /// the `open` frame's overrides.
    fn engine_options(&self, frame: &Json) -> Result<EngineOptions, Failure> {
        let mut budgets = self.config.default_budgets.clone();
        if let Some(ms) = protocol::opt_u64(frame, "timeout_ms")? {
            budgets.timeout = Some(Duration::from_millis(ms));
        }
        if let Some(n) = protocol::opt_u64(frame, "max_wm")? {
            budgets.max_wm = Some(n as usize);
        }
        if let Some(n) = protocol::opt_u64(frame, "max_cs")? {
            budgets.max_conflict_set = Some(n as usize);
        }
        if let Some(n) = protocol::opt_u64(frame, "max_delta")? {
            budgets.max_delta = Some(n as usize);
        }
        let matcher = match frame.get("matcher").and_then(|v| v.as_str()) {
            None => MatcherKind::Rete,
            Some(s) => parse_matcher(s)?,
        };
        let eval = match frame.get("eval").and_then(|v| v.as_str()) {
            None => EvalMode::default(),
            Some(s) => EvalMode::parse(s).ok_or_else(|| {
                Failure::new(
                    kind::PROTOCOL,
                    format!("unknown eval mode {s:?} (want bytecode|tree)"),
                )
            })?,
        };
        let metrics = match frame.get("metrics").and_then(|v| v.as_str()) {
            None => self.config.metrics,
            Some("off") => MetricsLevel::Off,
            Some("rules") => MetricsLevel::Rules,
            Some("full") => MetricsLevel::Full,
            Some(other) => {
                return Err(Failure::new(
                    kind::PROTOCOL,
                    format!("unknown metrics level {other:?}"),
                ))
            }
        };
        Ok(EngineOptions {
            matcher,
            eval,
            metrics,
            budgets,
            max_cycles: protocol::opt_u64(frame, "max_cycles")?.unwrap_or(self.config.max_cycles),
            // Long-lived sessions must stay bounded: `write` output is
            // dropped unless the client opts in, and trace events live
            // in a fixed ring.
            collect_log: frame.get("log") == Some(&Json::Bool(true)),
            trace_events: Some(self.config.trace_ring),
            ..EngineOptions::default()
        })
    }

    /// Verbs addressed to one existing session. The session is taken out
    /// of the table while its engine runs: on success it is reinserted,
    /// on an engine failure or a panic it is dropped — the structured
    /// error frame is the session's obituary, and every other session is
    /// untouched.
    fn session_verb(&mut self, op: &str, name: &str, frame: &Json) -> Result<Json, Failure> {
        let mut session = self.sessions.remove(name).ok_or_else(|| {
            Failure::new(kind::UNKNOWN_SESSION, format!("no session {name:?}"))
        })?;
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.run_session_verb(op, name, frame, &mut session)
        }));
        let result = match result {
            Ok(Ok(response)) => {
                if op != "close" {
                    self.sessions.insert(name.to_string(), session);
                }
                Ok(response)
            }
            Ok(Err(failure)) => {
                if !failure.closed {
                    self.sessions.insert(name.to_string(), session);
                }
                Err(failure)
            }
            Err(_) => {
                let mut failure = Failure::new(
                    kind::ENGINE,
                    format!("panic while serving {op:?}; session {name:?} closed"),
                );
                failure.engine = Some(("panic", 0));
                failure.closed = true;
                Err(failure)
            }
        };
        // A session that did not survive the verb (closed, engine
        // failure, panic) releases its admission slot right here — the
        // gauge counts live sessions only.
        if !self.sessions.contains_key(name) {
            self.admission.fetch_sub(1, Ordering::SeqCst);
        }
        result
    }

    fn run_session_verb(
        &self,
        op: &str,
        name: &str,
        frame: &Json,
        session: &mut Session,
    ) -> Result<Json, Failure> {
        match op {
            "inject" => {
                let delta = parse_delta(frame, session.engine.program())?;
                let queued = session.enqueue(delta)?;
                if self.wal.is_some() {
                    // Compaction records carry queued-but-undrained
                    // injects; mirror the accepted frame (replay keeps
                    // the mirror too — the recovered session compacts
                    // later).
                    session.note_pending(frame.render());
                }
                Ok(ok_frame("inject")
                    .set("session", name)
                    .set("queued", queued)
                    .set("depth", session.queue_depth()))
            }
            "step" => {
                let drained = session.drain();
                let fired = session.engine.step().map_err(|e| engine_failure(&e))?;
                Ok(ok_frame("step")
                    .set("session", name)
                    .set("drained", drained)
                    .set("fired", fired)
                    .set("cycles", session.engine.stats().cycles)
                    .set("firings", session.engine.stats().firings)
                    .set("wm", session.engine.wm().len()))
            }
            "run" | "run-to-fixpoint" => {
                let drained = session.drain();
                let outcome = session.engine.run().map_err(|e| engine_failure(&e))?;
                let status = if outcome.halted {
                    "halted"
                } else if outcome.hit_cycle_limit {
                    "cycle-limit"
                } else {
                    "quiescent"
                };
                Ok(ok_frame("run")
                    .set("session", name)
                    .set("drained", drained)
                    .set("status", status)
                    .set("cycles", outcome.cycles)
                    .set("firings", outcome.firings)
                    .set("wm", session.engine.wm().len())
                    .set("fingerprint", session.fingerprint()))
            }
            "query" => self.query(name, frame, session),
            "snapshot" => {
                let bytes = session.engine.checkpoint().to_bytes();
                Ok(ok_frame("snapshot")
                    .set("session", name)
                    .set("cycle", session.engine.stats().cycles)
                    .set("bytes", bytes.len())
                    .set("snapshot", protocol::to_hex(&bytes)))
            }
            "restore" => {
                let hex = protocol::req_str(frame, "snapshot")?;
                let bytes = protocol::from_hex(hex)?;
                let snapshot = Snapshot::from_bytes(&bytes)
                    .map_err(|e| Failure::new(kind::SNAPSHOT, e.to_string()))?;
                session
                    .engine
                    .restore(&snapshot)
                    .map_err(|e| Failure::new(kind::SNAPSHOT, e.to_string()))?;
                Ok(ok_frame("restore")
                    .set("session", name)
                    .set("cycle", session.engine.stats().cycles)
                    .set("wm", session.engine.wm().len()))
            }
            "reload" => {
                let source = protocol::req_str(frame, "program")?;
                // Compile into the running session's symbol space so the
                // replacement's symbol ids are interchangeable with live
                // WMEs. A compile error (or an engine refusal below)
                // leaves the session exactly as it was.
                let replacement =
                    parulel_lang::compile_into(source, &session.engine.program().interner)
                        .map_err(|e| Failure::new(kind::COMPILE, e.to_string()))?;
                let report = session
                    .engine
                    .reload(&replacement)
                    .map_err(|e| Failure::new(kind::RELOAD, e.to_string()))?;
                if self.wal.is_some() {
                    // Compaction records replay the session as
                    // open → reloads → restore: the engine snapshot only
                    // captures state, so the program swap itself must
                    // survive log truncation.
                    session.note_reload(frame.render());
                }
                let names = |v: &[String]| {
                    v.iter().map(|n| Json::from(n.as_str())).collect::<Vec<Json>>()
                };
                Ok(ok_frame("reload")
                    .set("session", name)
                    .set("added", names(&report.added))
                    .set("removed", names(&report.removed))
                    .set("changed", names(&report.changed))
                    .set("unchanged", report.unchanged)
                    .set("incremental", report.incremental)
                    .set("rules", session.engine.program().rules().len())
                    .set("wm", session.engine.wm().len())
                    .set("fingerprint", session.fingerprint()))
            }
            "metrics" => {
                let stats = session.engine.stats();
                let mut response = ok_frame("metrics")
                    .set("session", name)
                    .set("cycles", stats.cycles)
                    .set("firings", stats.firings)
                    .set("redacted_meta", stats.redacted_meta)
                    .set("redacted_guard", stats.redacted_guard)
                    .set("peak_eligible", stats.peak_eligible)
                    .set("wm", session.engine.wm().len())
                    .set("queue_depth", session.queue_depth())
                    .set("injected_adds", session.injected_adds)
                    .set("injected_removes", session.injected_removes)
                    .set("halted", session.engine.halted())
                    .set("fingerprint", session.fingerprint());
                // The full parulel-metrics/v1 report (per-rule counters,
                // matcher internals, phase times) only on request: it
                // carries wall-clock fields, and the compact frame stays
                // deterministic for golden transcripts.
                if frame.get("report") == Some(&Json::Bool(true)) {
                    let report = session.engine.metrics().to_json(
                        session.engine.program(),
                        &session.engine.matcher_metrics(),
                        stats,
                    );
                    response = response.set("report", report);
                }
                Ok(response)
            }
            "trace" => {
                let jsonl = session
                    .engine
                    .trace_events()
                    .map(|buf| buf.to_jsonl())
                    .unwrap_or_default();
                Ok(ok_frame("trace")
                    .set("session", name)
                    .set("events", jsonl.lines().count().saturating_sub(1))
                    .set("jsonl", jsonl))
            }
            "close" => Ok(ok_frame("close")
                .set("session", name)
                .set("cycles", session.engine.stats().cycles)
                .set("firings", session.engine.stats().firings)
                .set("fingerprint", session.fingerprint())),
            other => Err(Failure::new(
                kind::PROTOCOL,
                format!("unknown verb {other:?}"),
            )),
        }
    }

    /// `query`: scan one class's facts, deterministically ordered.
    fn query(&self, name: &str, frame: &Json, session: &mut Session) -> Result<Json, Failure> {
        let class_name = protocol::req_str(frame, "class")?;
        let program = session.engine.program();
        let class = program
            .classes
            .id_of(program.interner.intern(class_name))
            .ok_or_else(|| {
                Failure::new(kind::PROTOCOL, format!("unknown class {class_name:?}"))
            })?;
        let limit = protocol::opt_u64(frame, "limit")?.map(|n| n as usize);
        let interner = &program.interner;
        let mut rows: Vec<(String, Json)> = session
            .engine
            .wm()
            .iter_class(class)
            .map(|w| {
                let fields: Vec<Json> = w
                    .fields
                    .iter()
                    .map(|v| protocol::value_to_json(v, interner))
                    .collect();
                (format!("{:?}", w.fields), Json::Arr(fields))
            })
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        let count = rows.len();
        let facts: Vec<Json> = rows
            .into_iter()
            .take(limit.unwrap_or(usize::MAX))
            .map(|(_, row)| row)
            .collect();
        Ok(ok_frame("query")
            .set("session", name)
            .set("class", class_name)
            .set("count", count)
            .set("returned", facts.len())
            .set("facts", facts))
    }
}

/// Parses the `open` frame's `policy`/`guard`/`meta` fields into a
/// [`FiringPolicy`].
fn parse_policy(frame: &Json) -> Result<FiringPolicy, Failure> {
    let guard = match frame.get("guard").and_then(|v| v.as_str()) {
        None | Some("off") => GuardMode::Off,
        Some("ww") => GuardMode::WriteWrite,
        Some("serializable") => GuardMode::Serializable,
        Some(other) => {
            return Err(Failure::new(
                kind::PROTOCOL,
                format!("unknown guard {other:?}"),
            ))
        }
    };
    let meta = frame.get("meta") != Some(&Json::Bool(false));
    match frame.get("policy").and_then(|v| v.as_str()) {
        None | Some("parallel") => Ok(FiringPolicy::FireAll { meta, guard }),
        Some("lex") => Ok(FiringPolicy::SelectOne(Strategy::Lex)),
        Some("mea") => Ok(FiringPolicy::SelectOne(Strategy::Mea)),
        Some(other) => Err(Failure::new(
            kind::PROTOCOL,
            format!("unknown policy {other:?} (want parallel|lex|mea)"),
        )),
    }
}

/// Parses the CLI's matcher syntax (`rete`, `treat`, `naive`, `prete:N`,
/// `ptreat:N`).
fn parse_matcher(s: &str) -> Result<MatcherKind, Failure> {
    let workers = |n: &str| -> Result<usize, Failure> {
        match n.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(Failure::new(
                kind::PROTOCOL,
                format!("bad worker count in matcher {s:?} (want an integer >= 1)"),
            )),
        }
    };
    match s {
        "rete" => Ok(MatcherKind::Rete),
        "treat" => Ok(MatcherKind::Treat),
        "naive" => Ok(MatcherKind::Naive),
        _ => {
            if let Some(n) = s.strip_prefix("prete:") {
                Ok(MatcherKind::PartitionedRete(workers(n)?))
            } else if let Some(n) = s.strip_prefix("ptreat:") {
                Ok(MatcherKind::PartitionedTreat(workers(n)?))
            } else {
                Err(Failure::new(
                    kind::PROTOCOL,
                    format!("unknown matcher {s:?}"),
                ))
            }
        }
    }
}

/// Parses an `inject` frame's `adds`/`removes` into a validated
/// [`Delta`] (classes must exist, arities must match — a malformed
/// inject is a protocol error, never a panic inside the kernel).
fn parse_delta(frame: &Json, program: &parulel_core::Program) -> Result<Delta, Failure> {
    let mut delta = Delta::new();
    if let Some(removes) = frame.get("removes") {
        let ids = removes.as_arr().ok_or_else(|| {
            Failure::new(kind::PROTOCOL, "field \"removes\" must be an array of ids")
        })?;
        for id in ids {
            match id.as_f64() {
                Some(n) if n >= 0.0 && n == n.trunc() => {
                    delta.removes.push(parulel_core::WmeId(n as u64))
                }
                _ => {
                    return Err(Failure::new(
                        kind::PROTOCOL,
                        "WME ids in \"removes\" must be non-negative integers",
                    ))
                }
            }
        }
    }
    if let Some(adds) = frame.get("adds") {
        let adds = adds.as_arr().ok_or_else(|| {
            Failure::new(kind::PROTOCOL, "field \"adds\" must be an array of objects")
        })?;
        for add in adds {
            let class_name = protocol::req_str(add, "class")?;
            let class = program
                .classes
                .id_of(program.interner.intern(class_name))
                .ok_or_else(|| {
                    Failure::new(kind::PROTOCOL, format!("unknown class {class_name:?}"))
                })?;
            let fields = add
                .get("fields")
                .and_then(|v| v.as_arr())
                .ok_or_else(|| Failure::new(kind::PROTOCOL, "add needs a \"fields\" array"))?;
            let arity = program.classes.decl(class).arity();
            if fields.len() != arity {
                return Err(Failure::new(
                    kind::PROTOCOL,
                    format!(
                        "class {class_name:?} has arity {arity}, got {} fields",
                        fields.len()
                    ),
                ));
            }
            let values: Vec<parulel_core::Value> = fields
                .iter()
                .map(|f| protocol::json_to_value(f, &program.interner))
                .collect::<Result<_, _>>()?;
            delta.adds.push((class, values.into()));
        }
    }
    if delta.is_empty() {
        return Err(Failure::new(
            kind::PROTOCOL,
            "inject frame has no \"adds\" or \"removes\"",
        ));
    }
    delta.normalize();
    Ok(delta)
}
