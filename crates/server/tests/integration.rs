//! The acceptance test for `parulel serve`: many concurrent sessions of
//! the closure workload over the real TCP transport, to fixpoint, with
//! one session budget-tripped mid-run — its structured `engine` error
//! frame must not disturb any other session's final working memory.
//!
//! Every client drives its own socket from its own thread, so frames
//! from all sessions interleave arbitrarily at the server; the per-
//! session fingerprints must nevertheless equal the one a solo run
//! produces.

use parulel_server::{Server, ServerConfig};
use parulel_workloads::{closure::Closure, Scenario};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

const SESSIONS: usize = 8;
const BATCH: usize = 8;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// The frames one closure session sends: open (program only — the edges
/// arrive as injects, exercising the incremental path), batched injects,
/// run, close.
fn session_frames(name: &str, source: &str, edges: &[(i64, i64)], extra_open: &str) -> Vec<String> {
    let mut frames = vec![format!(
        r#"{{"op":"open","session":"{name}","program":"{}"{extra_open}}}"#,
        escape(source)
    )];
    for batch in edges.chunks(BATCH) {
        let adds: Vec<String> = batch
            .iter()
            .map(|(a, b)| format!(r#"{{"class":"edge","fields":[{a},{b}]}}"#))
            .collect();
        frames.push(format!(
            r#"{{"op":"inject","session":"{name}","adds":[{}]}}"#,
            adds.join(",")
        ));
    }
    frames.push(format!(r#"{{"op":"run","session":"{name}"}}"#));
    frames.push(format!(r#"{{"op":"close","session":"{name}"}}"#));
    frames
}

/// Runs frames against a fresh solo server; returns the run frame's
/// fingerprint.
fn solo_fingerprint(source: &str, edges: &[(i64, i64)]) -> String {
    let mut server = Server::new(ServerConfig::default());
    let mut fingerprint = None;
    for frame in session_frames("solo", source, edges, "") {
        let response = server.handle_line(&frame).expect("response");
        assert!(response.starts_with(r#"{"ok":true"#), "{response}");
        if response.contains(r#""op":"run""#) {
            let doc = parulel_engine::Json::parse(&response).unwrap();
            assert_eq!(doc.get("status").and_then(|s| s.as_str()), Some("quiescent"));
            fingerprint = doc
                .get("fingerprint")
                .and_then(|f| f.as_str())
                .map(str::to_string);
        }
    }
    fingerprint.expect("run frame carried a fingerprint")
}

#[test]
fn eight_concurrent_closure_sessions_survive_a_neighbors_budget_trip() {
    let scenario = Closure::new(24, 40, 7);
    let source = scenario.source().to_string();
    let edges: Vec<(i64, i64)> = scenario.edges().to_vec();
    let expected = solo_fingerprint(&source, &edges);

    let server = Arc::new(Mutex::new(Server::new(ServerConfig {
        max_sessions: SESSIONS + 1,
        ..ServerConfig::default()
    })));
    let (addr, accept_thread) =
        parulel_server::spawn_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");

    let mut clients = Vec::new();
    // 8 healthy sessions…
    for i in 0..SESSIONS {
        let (source, edges) = (source.clone(), edges.clone());
        clients.push(std::thread::spawn(move || -> (String, Option<String>) {
            let name = format!("closure-{i}");
            let stream = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut fingerprint = None;
            for frame in session_frames(&name, &source, &edges, "") {
                writer.write_all(frame.as_bytes()).unwrap();
                writer.write_all(b"\n").unwrap();
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                assert!(response.starts_with(r#"{"ok":true"#), "{name}: {response}");
                if response.contains(r#""op":"run""#) {
                    fingerprint = parulel_engine::Json::parse(&response)
                        .unwrap()
                        .get("fingerprint")
                        .and_then(|f| f.as_str())
                        .map(str::to_string);
                }
            }
            (name, fingerprint)
        }));
    }
    // …and one doomed one: a WM budget that must trip on cycle 1.
    let doomed = {
        let (source, edges) = (source.clone(), edges.clone());
        std::thread::spawn(move || -> String {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut error_frame = String::new();
            for frame in session_frames("doomed", &source, &edges, r#","max_wm":45"#) {
                writer.write_all(frame.as_bytes()).unwrap();
                writer.write_all(b"\n").unwrap();
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                if frame.contains(r#""op":"run""#) {
                    error_frame = response.trim().to_string();
                    break; // the close would only see unknown-session
                }
                assert!(response.starts_with(r#"{"ok":true"#), "doomed: {response}");
            }
            error_frame
        })
    };

    let error_frame = doomed.join().expect("doomed client");
    let doc = parulel_engine::Json::parse(&error_frame).expect("error frame is JSON");
    assert_eq!(doc.get("ok"), Some(&parulel_engine::Json::Bool(false)));
    let err = doc.get("error").expect("structured error");
    assert_eq!(err.get("kind").and_then(|k| k.as_str()), Some("engine"));
    assert_eq!(err.get("engine_kind").and_then(|k| k.as_str()), Some("wm"));
    assert_eq!(doc.get("closed"), Some(&parulel_engine::Json::Bool(true)));

    for client in clients {
        let (name, fingerprint) = client.join().expect("client thread");
        assert_eq!(
            fingerprint.as_deref(),
            Some(expected.as_str()),
            "{name}: final WM diverged from the solo run"
        );
    }

    // All sessions closed (the doomed one by its trip); the daemon is
    // still serving, and it saw all nine resident at peak.
    {
        let mut locked = server.lock().unwrap();
        let metrics = locked.handle_line(r#"{"op":"metrics"}"#).unwrap();
        let doc = parulel_engine::Json::parse(&metrics).unwrap();
        assert_eq!(doc.get("sessions").unwrap().as_f64(), Some(0.0));
        let peak = doc.get("peak_sessions").unwrap().as_f64().unwrap();
        assert!(peak >= SESSIONS as f64, "peak {peak} < {SESSIONS}");
        locked.handle_line(r#"{"op":"shutdown"}"#).unwrap();
    }
    accept_thread.join().expect("accept thread");
}

/// Live hot-swap under concurrency: eight TCP sessions run the closure
/// workload while one of them is `reload`ed twice mid-stream — once to
/// the identical program (must report all-unchanged) and once to a
/// program with an extra log-only `audit` rule (must report it added).
/// Neither swap may disturb that session's final working memory, and
/// the seven untouched neighbors must land on the solo fingerprint.
#[test]
fn reloading_one_session_leaves_seven_neighbors_undisturbed() {
    let scenario = Closure::new(24, 40, 7);
    let source = scenario.source().to_string();
    let edges: Vec<(i64, i64)> = scenario.edges().to_vec();
    let expected = solo_fingerprint(&source, &edges);
    // Same class table, one extra rule that only writes to the log —
    // the reachability fixpoint (and thus the fingerprint) is identical.
    let source_v2 = format!("{source}\n(p audit (reach ^from <a> ^to <b>) --> (write audit <a> <b>))");

    let server = Arc::new(Mutex::new(Server::new(ServerConfig {
        max_sessions: SESSIONS,
        ..ServerConfig::default()
    })));
    let (addr, accept_thread) =
        parulel_server::spawn_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");

    let mut clients = Vec::new();
    for i in 0..SESSIONS {
        let (source, source_v2, edges) = (source.clone(), source_v2.clone(), edges.clone());
        clients.push(std::thread::spawn(move || -> (String, Option<String>) {
            let name = format!("closure-{i}");
            let stream = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut send = |frame: &str| -> String {
                writer.write_all(frame.as_bytes()).unwrap();
                writer.write_all(b"\n").unwrap();
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                response
            };
            let mut fingerprint = None;
            let frames = session_frames(&name, &source, &edges, "");
            let midpoint = frames.len() / 2;
            for (k, frame) in frames.iter().enumerate() {
                // Session 0 gets hot-swapped between inject batches:
                // identity first, then the audit variant.
                if i == 0 && k == midpoint {
                    for (swap, want) in
                        [(&source, r#""changed":[]"#), (&source_v2, r#""added":["audit"]"#)]
                    {
                        let r = send(&format!(
                            r#"{{"op":"reload","session":"{name}","program":"{}"}}"#,
                            escape(swap)
                        ));
                        assert!(r.starts_with(r#"{"ok":true"#), "{name}: {r}");
                        assert!(r.contains(want), "{name}: {r}");
                    }
                }
                let response = send(frame);
                assert!(response.starts_with(r#"{"ok":true"#), "{name}: {response}");
                if response.contains(r#""op":"run""#) {
                    fingerprint = parulel_engine::Json::parse(&response)
                        .unwrap()
                        .get("fingerprint")
                        .and_then(|f| f.as_str())
                        .map(str::to_string);
                }
            }
            (name, fingerprint)
        }));
    }
    for client in clients {
        let (name, fingerprint) = client.join().expect("client thread");
        assert_eq!(
            fingerprint.as_deref(),
            Some(expected.as_str()),
            "{name}: final WM diverged from the solo run"
        );
    }
    server.lock().unwrap().handle_line(r#"{"op":"shutdown"}"#).unwrap();
    accept_thread.join().expect("accept thread");
}
