//! The durability layer end to end, short of a real `kill -9` (the
//! process-level proof lives in the workspace-root `crash_recovery`
//! test): write-ahead logging, snapshot compaction, crash-point
//! recovery at every byte offset, the `sync` verb, graceful `shutdown`
//! persistence, and the recovery edge cases the issue enumerates.
//!
//! The invariant every test leans on: a durable server dropped without
//! ceremony (the in-process stand-in for SIGKILL) must recover from its
//! WAL directory to the exact working-memory fingerprint a live or
//! uninterrupted run shows. Torn trailing records are truncated, never
//! replayed.

use parulel_engine::Json;
use parulel_server::wal::{self, Record, SessionWal, SnapshotRecord, WalFaults};
use parulel_server::{recover, Server, ServerConfig, SyncPolicy, WalConfig};
use parulel_workloads::{closure::Closure, Scenario};
use std::fs;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "parulel-durability-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn wal_config(dir: &Path) -> WalConfig {
    WalConfig::new(dir, SyncPolicy::Always)
}

fn durable(dir: &Path) -> Server {
    Server::with_wal(ServerConfig::default(), wal_config(dir))
}

/// Sends one frame, asserts `ok:true`, returns the parsed response.
fn ok(server: &mut Server, frame: &str) -> Json {
    let response = server.handle_line(frame).expect("response");
    assert!(response.starts_with(r#"{"ok":true"#), "{frame} -> {response}");
    Json::parse(&response).unwrap()
}

/// Sends one frame expected to fail; returns the error kind.
fn err_kind(server: &mut Server, frame: &str) -> String {
    let response = server.handle_line(frame).expect("response");
    assert!(response.starts_with(r#"{"ok":false"#), "{frame} -> {response}");
    Json::parse(&response)
        .unwrap()
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(|k| k.as_str())
        .unwrap()
        .to_string()
}

/// The session's current WM fingerprint via a (non-logged) metrics frame.
fn fingerprint(server: &mut Server, session: &str) -> String {
    ok(server, &format!(r#"{{"op":"metrics","session":"{session}"}}"#))
        .get("fingerprint")
        .and_then(|f| f.as_str())
        .unwrap()
        .to_string()
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// A small closure workload as a mutating frame sequence: open, then
/// alternating inject batches and runs, ending on an undrained inject —
/// so a crash leaves both applied state and queued state behind.
fn closure_frames(session: &str) -> Vec<String> {
    let scenario = Closure::new(12, 18, 7);
    let mut frames = vec![format!(
        r#"{{"op":"open","session":"{session}","program":"{}"}}"#,
        escape(scenario.source())
    )];
    for (i, batch) in scenario.edges().chunks(6).enumerate() {
        let adds: Vec<String> = batch
            .iter()
            .map(|(a, b)| format!(r#"{{"class":"edge","fields":[{a},{b}]}}"#))
            .collect();
        frames.push(format!(
            r#"{{"op":"inject","session":"{session}","adds":[{}]}}"#,
            adds.join(",")
        ));
        if i % 2 == 1 {
            frames.push(format!(r#"{{"op":"run","session":"{session}"}}"#));
        }
    }
    frames
}

/// Drives `frames` plus a final run through a fresh *non-durable*
/// server: the uninterrupted reference fingerprint.
fn reference_fingerprint(frames: &[String], session: &str) -> String {
    let mut server = Server::new(ServerConfig::default());
    for frame in frames {
        ok(&mut server, frame);
    }
    ok(&mut server, &format!(r#"{{"op":"run","session":"{session}"}}"#))
        .get("fingerprint")
        .and_then(|f| f.as_str())
        .unwrap()
        .to_string()
}

#[test]
fn dropped_durable_server_recovers_to_identical_fingerprint() {
    let dir = tmp_dir("basic");
    let frames = closure_frames("s1");
    let expected = reference_fingerprint(&frames, "s1");

    let mut server = durable(&dir);
    for frame in &frames {
        ok(&mut server, frame);
    }
    let live = fingerprint(&mut server, "s1");
    // Simulated kill -9: drop with no shutdown, no close, no sync verb.
    drop(server);

    let mut restored = durable(&dir);
    let report = recover(&mut restored, &wal_config(&dir));
    assert_eq!(report.sessions_recovered, 1, "{:?}", report.notes);
    assert_eq!(report.sessions_skipped, 0, "{:?}", report.notes);
    assert_eq!(report.torn_records, 0);
    assert_eq!(fingerprint(&mut restored, "s1"), live);

    // The recovered session keeps serving: the queued tail drains and
    // the final state matches the uninterrupted run exactly.
    let run = ok(&mut restored, r#"{"op":"run","session":"s1"}"#);
    assert_eq!(run.get("fingerprint").and_then(|f| f.as_str()), Some(expected.as_str()));

    // Recovery status surfaces in ping.
    let ping = ok(&mut restored, r#"{"op":"ping"}"#);
    assert_eq!(ping.get("wal").and_then(|w| w.as_str()), Some("always"));
    assert_eq!(ping.get("recovered_sessions").and_then(|n| n.as_f64()), Some(1.0));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_is_exact_at_every_crash_point() {
    let dir = tmp_dir("crashpoints");
    let frames = closure_frames("s");
    let mut cfg = wal_config(&dir);
    cfg.snapshot_every = 0; // every record is a frame record: countable
    let mut server = Server::with_wal(ServerConfig::default(), cfg.clone());
    // live[k] = the fingerprint after the (k+1)-th logged record applied.
    let mut live = Vec::new();
    for frame in &frames {
        ok(&mut server, frame);
        live.push(fingerprint(&mut server, "s"));
    }
    drop(server);
    let path = cfg.dir.join(wal::wal_file_name("s"));
    let full = fs::read(&path).unwrap();
    assert!(full.len() > 200, "workload too small to sweep");

    // Cut the log at every byte offset (a kill -9 can land anywhere in
    // an append) and recover: whatever whole records survive must replay
    // to exactly the fingerprint the live server had at that point, and
    // the torn remainder must be dropped.
    for cut in 8..=full.len() {
        fs::write(&path, &full[..cut]).unwrap();
        let mut restored = Server::with_wal(ServerConfig::default(), cfg.clone());
        let report = recover(&mut restored, &cfg);
        let n = report.frames_replayed as usize;
        if report.sessions_recovered == 1 {
            assert!(n >= 1, "cut {cut}: recovered with no frames");
            assert_eq!(
                fingerprint(&mut restored, "s"),
                live[n - 1],
                "cut {cut}: replayed {n} records to a diverged state"
            );
        } else {
            // Only the pre-open prefix cannot recover a session.
            assert_eq!(n, 0, "cut {cut}");
        }
        // The file was truncated to whole records: a second recovery
        // must see no torn tail.
        let mut again = Server::with_wal(ServerConfig::default(), cfg.clone());
        let report2 = recover(&mut again, &cfg);
        assert_eq!(report2.torn_records, 0, "cut {cut}: tail not truncated");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn close_and_engine_death_delete_the_wal() {
    let dir = tmp_dir("lifecycle");
    let mut server = durable(&dir);
    let frames = closure_frames("gone");
    for frame in &frames {
        ok(&mut server, frame);
    }
    let path = dir.join(wal::wal_file_name("gone"));
    assert!(path.exists());
    ok(&mut server, r#"{"op":"close","session":"gone"}"#);
    assert!(!path.exists(), "close left the WAL behind");

    // An engine death (budget trip) is a closed session too.
    ok(
        &mut server,
        r#"{"op":"open","session":"doomed","program":"(literalize c n)\n(p grow (c ^n <n>) --> (make c ^n (+ <n> 1)))","max_wm":3}"#,
    );
    ok(
        &mut server,
        r#"{"op":"inject","session":"doomed","adds":[{"class":"c","fields":[0]}]}"#,
    );
    let doomed_path = dir.join(wal::wal_file_name("doomed"));
    assert!(doomed_path.exists());
    assert_eq!(err_kind(&mut server, r#"{"op":"run","session":"doomed"}"#), "engine");
    assert!(!doomed_path.exists(), "engine death left the WAL behind");

    // Nothing to recover afterwards.
    drop(server);
    let mut restored = durable(&dir);
    let report = recover(&mut restored, &wal_config(&dir));
    assert_eq!(report.sessions_recovered, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compaction_bounds_the_log_and_recovery_stays_exact() {
    let dir = tmp_dir("compaction");
    let frames = closure_frames("c1");
    let expected = reference_fingerprint(&frames, "c1");
    let mut cfg = wal_config(&dir);
    cfg.snapshot_every = 2;
    let mut server = Server::with_wal(ServerConfig::default(), cfg.clone());
    for frame in &frames {
        ok(&mut server, frame);
    }
    let metrics = ok(&mut server, r#"{"op":"metrics"}"#);
    let snapshots = metrics.get("wal_snapshots").and_then(|n| n.as_f64()).unwrap();
    assert!(snapshots >= 1.0, "no compaction happened");
    drop(server);

    // The compacted log starts with a snapshot record.
    let path = cfg.dir.join(wal::wal_file_name("c1"));
    let scan = wal::scan(&path, &WalFaults::none()).unwrap();
    assert!(
        matches!(scan.records.first(), Some(Record::Snapshot(_))),
        "log was never compacted"
    );

    let mut restored = Server::with_wal(ServerConfig::default(), cfg.clone());
    let report = recover(&mut restored, &cfg);
    assert_eq!(report.sessions_recovered, 1, "{:?}", report.notes);
    let run = ok(&mut restored, r#"{"op":"run","session":"c1"}"#);
    assert_eq!(run.get("fingerprint").and_then(|f| f.as_str()), Some(expected.as_str()));
    let _ = fs::remove_dir_all(&dir);
}

/// A logged `reload` must be part of the durable truth — both as a raw
/// frame record (snapshot_every = 0) and riding a compacted snapshot
/// record's reload list (snapshot_every = 1, where the frame itself is
/// compacted away). The replacement program adds a rule that *changes
/// the WM* (self-loops), so recovery replaying the wrong program would
/// produce the wrong fingerprint, not just the wrong log.
#[test]
fn logged_reloads_survive_recovery_and_compaction() {
    let scenario = Closure::new(12, 18, 7);
    let v1 = scenario.source().to_string();
    let v2 = format!(
        "{v1}\n(p selfloop (reach ^from <a> ^to <b>) -(reach ^from <a> ^to <a>) --> (make reach ^from <a> ^to <a>))"
    );
    let mut frames = vec![format!(
        r#"{{"op":"open","session":"r1","program":"{}"}}"#,
        escape(&v1)
    )];
    for (i, batch) in scenario.edges().chunks(6).enumerate() {
        let adds: Vec<String> = batch
            .iter()
            .map(|(a, b)| format!(r#"{{"class":"edge","fields":[{a},{b}]}}"#))
            .collect();
        frames.push(format!(r#"{{"op":"inject","session":"r1","adds":[{}]}}"#, adds.join(",")));
        if i == 0 {
            // Hot-swap mid-stream, with queued injects in flight.
            frames.push(r#"{"op":"run","session":"r1"}"#.to_string());
            frames.push(format!(r#"{{"op":"reload","session":"r1","program":"{}"}}"#, escape(&v2)));
        }
    }
    let expected = reference_fingerprint(&frames, "r1");

    for snapshot_every in [0u64, 1] {
        let dir = tmp_dir(&format!("reload{snapshot_every}"));
        let mut cfg = wal_config(&dir);
        cfg.snapshot_every = snapshot_every;
        let mut server = Server::with_wal(ServerConfig::default(), cfg.clone());
        for frame in &frames {
            ok(&mut server, frame);
        }
        let live = fingerprint(&mut server, "r1");
        drop(server); // kill -9: no shutdown, no close

        if snapshot_every == 1 {
            // The reload frame was compacted away: it must ride in the
            // snapshot record's reload list instead.
            let path = cfg.dir.join(wal::wal_file_name("r1"));
            let scan = wal::scan(&path, &WalFaults::none()).unwrap();
            let Some(Record::Snapshot(snap)) = scan.records.last() else {
                panic!("expected a compacted log, got {:?}", scan.records);
            };
            assert_eq!(snap.reloads.len(), 1, "reload missing from snapshot record");
        }

        let mut restored = Server::with_wal(ServerConfig::default(), cfg.clone());
        let report = recover(&mut restored, &cfg);
        assert_eq!(report.sessions_recovered, 1, "{:?}", report.notes);
        assert_eq!(fingerprint(&mut restored, "r1"), live, "snapshot_every={snapshot_every}");

        // The recovered session runs the *reloaded* program: an identity
        // reload of v2 reports nothing added or changed…
        let r = ok(
            &mut restored,
            &format!(r#"{{"op":"reload","session":"r1","program":"{}"}}"#, escape(&v2)),
        );
        assert_eq!(r.get("added"), Some(&Json::Arr(vec![])), "{r:?}");
        assert_eq!(r.get("changed"), Some(&Json::Arr(vec![])), "{r:?}");
        // …and the drained tail reaches the uninterrupted run's state,
        // self-loops included.
        let run = ok(&mut restored, r#"{"op":"run","session":"r1"}"#);
        assert_eq!(run.get("fingerprint").and_then(|f| f.as_str()), Some(expected.as_str()));
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn queued_injects_survive_compaction() {
    let dir = tmp_dir("pending");
    // Compact after every single frame: the undrained inject must ride
    // in the snapshot record's pending list, not in replayable frames.
    let mut cfg = wal_config(&dir);
    cfg.snapshot_every = 1;
    let open = r#"{"op":"open","session":"p1","program":"(literalize cell v)\n(p bump (cell ^v 0) --> (modify 1 ^v 1))"}"#;
    let inject = r#"{"op":"inject","session":"p1","adds":[{"class":"cell","fields":[0]}]}"#;
    let mut server = Server::with_wal(ServerConfig::default(), cfg.clone());
    ok(&mut server, open);
    ok(&mut server, inject);
    drop(server);

    let path = cfg.dir.join(wal::wal_file_name("p1"));
    let scan = wal::scan(&path, &WalFaults::none()).unwrap();
    assert_eq!(scan.records.len(), 1);
    let Record::Snapshot(snap) = &scan.records[0] else {
        panic!("expected a snapshot-only log, got {:?}", scan.records);
    };
    assert_eq!(snap.pending.len(), 1, "queued inject missing from snapshot record");

    let mut restored = Server::with_wal(ServerConfig::default(), cfg.clone());
    let report = recover(&mut restored, &cfg);
    assert_eq!(report.sessions_recovered, 1, "{:?}", report.notes);
    let run = ok(&mut restored, r#"{"op":"run","session":"p1"}"#);
    assert_eq!(run.get("firings").and_then(|n| n.as_f64()), Some(1.0));

    // Reference: the same three frames uninterrupted.
    let mut reference = Server::new(ServerConfig::default());
    ok(&mut reference, open);
    ok(&mut reference, inject);
    ok(&mut reference, r#"{"op":"run","session":"p1"}"#);
    assert_eq!(fingerprint(&mut restored, "p1"), fingerprint(&mut reference, "p1"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sync_verb_syncs_when_durable_and_refuses_otherwise() {
    let dir = tmp_dir("syncverb");
    let mut server = durable(&dir);
    for frame in &closure_frames("s1") {
        ok(&mut server, frame);
    }
    let all = ok(&mut server, r#"{"op":"sync"}"#);
    assert_eq!(all.get("synced").and_then(|n| n.as_f64()), Some(1.0));
    let one = ok(&mut server, r#"{"op":"sync","session":"s1"}"#);
    assert_eq!(one.get("synced").and_then(|n| n.as_f64()), Some(1.0));
    assert_eq!(
        err_kind(&mut server, r#"{"op":"sync","session":"nope"}"#),
        "unknown-session"
    );

    let mut plain = Server::new(ServerConfig::default());
    let response = plain.handle_line(r#"{"op":"sync"}"#).unwrap();
    assert!(response.contains("durability is not enabled"), "{response}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_frame_persists_sessions_for_the_next_start() {
    let dir = tmp_dir("shutdown");
    let frames = closure_frames("s1");
    let expected = reference_fingerprint(&frames, "s1");
    let mut server = durable(&dir);
    for frame in &frames {
        ok(&mut server, frame);
    }
    let response = ok(&mut server, r#"{"op":"shutdown"}"#);
    assert_eq!(response.get("persisted").and_then(|n| n.as_f64()), Some(1.0));
    drop(server);

    // A protocol shutdown compacts: the log is snapshot-only.
    let path = dir.join(wal::wal_file_name("s1"));
    let scan = wal::scan(&path, &WalFaults::none()).unwrap();
    assert_eq!(scan.records.len(), 1);
    assert!(matches!(scan.records[0], Record::Snapshot(_)));

    let mut restored = durable(&dir);
    let report = recover(&mut restored, &wal_config(&dir));
    assert_eq!(report.sessions_recovered, 1, "{:?}", report.notes);
    let run = ok(&mut restored, r#"{"op":"run","session":"s1"}"#);
    assert_eq!(run.get("fingerprint").and_then(|f| f.as_str()), Some(expected.as_str()));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_edge_cases_refuse_cleanly() {
    // Empty dir and missing dir: quiet no-ops.
    let dir = tmp_dir("edges");
    let mut server = durable(&dir);
    let report = recover(&mut server, &wal_config(&dir));
    assert_eq!(report.sessions_recovered + report.sessions_skipped, 0);
    let missing = dir.join("never-created");
    let report = recover(&mut server, &wal_config(&missing));
    assert_eq!(report.sessions_recovered + report.sessions_skipped, 0);

    // Zero-length WAL: skipped with a clear note, file left in place.
    let zero = dir.join(wal::wal_file_name("zero"));
    fs::write(&zero, b"").unwrap();
    // Foreign file: refused, never replayed, left in place.
    let foreign = dir.join(wal::wal_file_name("alien"));
    fs::write(&foreign, b"some other program's data\n").unwrap();
    // Unsupported version: refused, left in place.
    let versioned = dir.join(wal::wal_file_name("future"));
    let mut bytes = wal::WAL_MAGIC.to_vec();
    bytes.extend_from_slice(&9u32.to_le_bytes());
    fs::write(&versioned, &bytes).unwrap();
    // A name this daemon could not have generated.
    let odd_name = dir.join("not-hex!.wal");
    fs::write(&odd_name, b"whatever").unwrap();

    let mut restored = durable(&dir);
    let report = recover(&mut restored, &wal_config(&dir));
    assert_eq!(report.sessions_recovered, 0);
    assert_eq!(report.sessions_skipped, 4, "{:?}", report.notes);
    let notes = report.notes.join("\n");
    assert!(notes.contains("zero-length"), "{notes}");
    assert!(notes.contains("not a parulel WAL"), "{notes}");
    assert!(notes.contains("unsupported WAL version 9"), "{notes}");
    assert!(notes.contains("not a name this daemon writes"), "{notes}");
    for path in [&zero, &foreign, &versioned, &odd_name] {
        assert!(path.exists(), "recovery deleted {path:?}");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_with_no_tail_and_tail_with_no_snapshot_both_recover() {
    // Tail with no snapshot: compaction disabled entirely.
    let dir = tmp_dir("shapes");
    let frames = closure_frames("t1");
    let expected = reference_fingerprint(&frames, "t1");
    let mut cfg = wal_config(&dir);
    cfg.snapshot_every = 0;
    let mut server = Server::with_wal(ServerConfig::default(), cfg.clone());
    for frame in &frames {
        ok(&mut server, frame);
    }
    drop(server);
    let scan = wal::scan(&cfg.dir.join(wal::wal_file_name("t1")), &WalFaults::none()).unwrap();
    assert!(scan.records.iter().all(|r| matches!(r, Record::Frame(_))));

    // Snapshot with no tail: compact manually through the WAL API.
    let mut reference = Server::new(ServerConfig::default());
    for frame in &frames {
        ok(&mut reference, frame);
    }
    let open_line = Json::parse(&frames[0]).unwrap().render();
    let mut manual = SessionWal::create(&cfg, "t2", &open_line).unwrap();
    // Borrow the reference session's engine state for the record.
    let snap_frame = ok(&mut reference, r#"{"op":"snapshot","session":"t1"}"#);
    let hex = snap_frame.get("snapshot").and_then(|s| s.as_str()).unwrap();
    let snapshot_bytes: Vec<u8> = (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap())
        .collect();
    let open_t2 = open_line.replace("\"t1\"", "\"t2\"");
    manual
        .compact(&SnapshotRecord {
            open_line: open_t2,
            snapshot: snapshot_bytes,
            injected_adds: 0,
            injected_removes: 0,
            pending: frames
                .iter()
                .rfind(|f| f.contains(r#""op":"inject""#))
                .map(|f| vec![f.replace("\"t1\"", "\"t2\"")])
                .unwrap_or_default(),
            reloads: Vec::new(),
        })
        .unwrap();
    manual.sync().unwrap();
    drop(manual);

    let mut restored = Server::with_wal(ServerConfig::default(), cfg.clone());
    let report = recover(&mut restored, &cfg);
    assert_eq!(report.sessions_recovered, 2, "{:?}", report.notes);
    let run = ok(&mut restored, r#"{"op":"run","session":"t1"}"#);
    assert_eq!(run.get("fingerprint").and_then(|f| f.as_str()), Some(expected.as_str()));
    let _ = fs::remove_dir_all(&dir);
}

#[cfg(feature = "fault-inject")]
mod faults {
    use super::*;

    #[test]
    fn injected_torn_write_is_truncated_never_replayed() {
        let dir = tmp_dir("torn-write");
        let frames = closure_frames("f1");
        let mut cfg = wal_config(&dir);
        cfg.snapshot_every = 0;
        // Tear the 4th append mid-write: records 4.. are garbage on disk.
        cfg.faults = WalFaults {
            torn_write_at: Some(4),
            short_read_at: None,
        };
        let mut server = Server::with_wal(ServerConfig::default(), cfg.clone());
        let mut live = Vec::new();
        for frame in &frames {
            ok(&mut server, frame);
            live.push(fingerprint(&mut server, "f1"));
        }
        drop(server);

        let mut clean = cfg.clone();
        clean.faults = WalFaults::none();
        let mut restored = Server::with_wal(ServerConfig::default(), clean.clone());
        let report = recover(&mut restored, &clean);
        assert_eq!(report.sessions_recovered, 1, "{:?}", report.notes);
        assert_eq!(report.torn_records, 1);
        // Exactly the 3 whole records replay; the torn 4th never does.
        assert_eq!(report.frames_replayed, 3);
        assert_eq!(fingerprint(&mut restored, "f1"), live[2]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_short_read_truncates_at_the_damaged_record() {
        let dir = tmp_dir("short-read");
        let mut cfg = wal_config(&dir);
        cfg.snapshot_every = 0;
        let mut server = Server::with_wal(ServerConfig::default(), cfg.clone());
        let frames = closure_frames("r1");
        let mut live = Vec::new();
        for frame in &frames {
            ok(&mut server, frame);
            live.push(fingerprint(&mut server, "r1"));
        }
        drop(server);

        // The disk is fine, but reads of record 2 come up short.
        let mut damaged = cfg.clone();
        damaged.faults = WalFaults {
            torn_write_at: None,
            short_read_at: Some(2),
        };
        let mut restored = Server::with_wal(ServerConfig::default(), damaged.clone());
        let report = recover(&mut restored, &damaged);
        assert_eq!(report.sessions_recovered, 1, "{:?}", report.notes);
        assert_eq!(report.frames_replayed, 1);
        assert_eq!(fingerprint(&mut restored, "r1"), live[0]);
        let _ = fs::remove_dir_all(&dir);
    }
}
