//! Protocol golden tests: a recorded session transcript checked
//! byte-for-byte, plus malformed-frame cases that must come back as
//! structured error frames (and must never kill the server).
//!
//! The transcript pins the wire format. Response frames deliberately
//! carry no wall-clock fields (timings live in the opt-in `report`
//! payload of `metrics`), so every byte below is deterministic; a
//! change here is a protocol change and should be made knowingly, with
//! DESIGN.md's frame reference updated to match.

use parulel_server::{Server, ServerConfig};

/// The self-contained transitive-closure program the transcript drives.
const PROGRAM: &str = "(literalize edge from to)\
(literalize reach from to)\
(p seed (edge ^from <a> ^to <b>) -(reach ^from <a> ^to <b>) --> (make reach ^from <a> ^to <b>))\
(p close (reach ^from <a> ^to <b>) (edge ^from <b> ^to <c>) -(reach ^from <a> ^to <c>) --> (make reach ^from <a> ^to <c>))\
(wm (edge ^from 1 ^to 2) (edge ^from 2 ^to 3))";

fn open_frame(session: &str) -> String {
    format!(
        r#"{{"op":"open","session":"{session}","program":"{}"}}"#,
        PROGRAM.replace('\\', "\\\\").replace('"', "\\\"")
    )
}

#[test]
fn golden_session_transcript() {
    let mut server = Server::new(ServerConfig::default());
    let open = open_frame("s1");
    let transcript: Vec<(&str, &str)> = vec![
        (
            open.as_str(),
            r#"{"ok":true,"op":"open","session":"s1","policy":"fire-all","rules":2,"wm":2}"#,
        ),
        (
            r#"{"op":"inject","session":"s1","adds":[{"class":"edge","fields":[3,4]}]}"#,
            r#"{"ok":true,"op":"inject","session":"s1","queued":1,"depth":1}"#,
        ),
        (
            r#"{"op":"run","session":"s1"}"#,
            r#"{"ok":true,"op":"run","session":"s1","drained":1,"status":"quiescent","cycles":3,"firings":6,"wm":9,"fingerprint":"735c3f975f38542b"}"#,
        ),
        (
            r#"{"op":"query","session":"s1","class":"reach"}"#,
            r#"{"ok":true,"op":"query","session":"s1","class":"reach","count":6,"returned":6,"facts":[[1,2],[1,3],[1,4],[2,3],[2,4],[3,4]]}"#,
        ),
        (
            r#"{"op":"metrics","session":"s1"}"#,
            r#"{"ok":true,"op":"metrics","session":"s1","cycles":3,"firings":6,"redacted_meta":0,"redacted_guard":0,"peak_eligible":3,"wm":9,"queue_depth":0,"injected_adds":1,"injected_removes":0,"halted":false,"fingerprint":"735c3f975f38542b"}"#,
        ),
        (
            r#"{"op":"metrics"}"#,
            r#"{"ok":true,"op":"metrics","sessions":1,"peak_sessions":1,"max_sessions":64,"frames":6,"errors":0,"session_list":["s1"]}"#,
        ),
        (
            r#"{"op":"close","session":"s1"}"#,
            r#"{"ok":true,"op":"close","session":"s1","cycles":3,"firings":6,"fingerprint":"735c3f975f38542b"}"#,
        ),
        (
            r#"{"op":"shutdown"}"#,
            r#"{"ok":true,"op":"shutdown","sessions_closed":0}"#,
        ),
    ];
    for (request, expected) in transcript {
        let response = server.handle_line(request).expect("non-blank line");
        assert_eq!(response, expected, "request: {request}");
    }
    assert!(server.shutting_down());
}

/// `PROGRAM` with one rule body changed (`close` gains a `write`) and
/// one rule added (`audit`) — same class table, so a live `reload`
/// must accept it.
const PROGRAM_V2: &str = "(literalize edge from to)\
(literalize reach from to)\
(p seed (edge ^from <a> ^to <b>) -(reach ^from <a> ^to <b>) --> (make reach ^from <a> ^to <b>))\
(p close (reach ^from <a> ^to <b>) (edge ^from <b> ^to <c>) -(reach ^from <a> ^to <c>) --> (make reach ^from <a> ^to <c>) (write closed <a> <c>))\
(p audit (reach ^from <a> ^to <c>) --> (write audit <a> <c>))";

fn reload_frame(session: &str, program: &str) -> String {
    format!(
        r#"{{"op":"reload","session":"{session}","program":"{}"}}"#,
        program.replace('\\', "\\\\").replace('"', "\\\"")
    )
}

/// The hot-swap transcript, byte-for-byte: an identity reload is
/// reported as all-unchanged and perturbs nothing (same fingerprint,
/// and the follow-up run matches [`golden_session_transcript`]'s
/// numbers); a real swap reports the added/changed rule names, keeps
/// the WM and fingerprint, and the next run fires the new `audit` rule
/// against existing facts without re-firing refracted ones.
#[test]
fn golden_reload_transcript() {
    let mut server = Server::new(ServerConfig::default());
    let transcript: Vec<(String, &str)> = vec![
        (
            open_frame("s1"),
            r#"{"ok":true,"op":"open","session":"s1","policy":"fire-all","rules":2,"wm":2}"#,
        ),
        (
            reload_frame("s1", PROGRAM),
            r#"{"ok":true,"op":"reload","session":"s1","added":[],"removed":[],"changed":[],"unchanged":2,"incremental":true,"rules":2,"wm":2,"fingerprint":"d0b654ecefdc6547"}"#,
        ),
        (
            r#"{"op":"run","session":"s1"}"#.to_string(),
            r#"{"ok":true,"op":"run","session":"s1","drained":0,"status":"quiescent","cycles":2,"firings":3,"wm":5,"fingerprint":"e03e8458d2e5a23f"}"#,
        ),
        (
            reload_frame("s1", PROGRAM_V2),
            r#"{"ok":true,"op":"reload","session":"s1","added":["audit"],"removed":[],"changed":["close"],"unchanged":1,"incremental":true,"rules":3,"wm":5,"fingerprint":"e03e8458d2e5a23f"}"#,
        ),
        (
            r#"{"op":"run","session":"s1"}"#.to_string(),
            r#"{"ok":true,"op":"run","session":"s1","drained":0,"status":"quiescent","cycles":1,"firings":3,"wm":5,"fingerprint":"e03e8458d2e5a23f"}"#,
        ),
        (
            r#"{"op":"close","session":"s1"}"#.to_string(),
            r#"{"ok":true,"op":"close","session":"s1","cycles":3,"firings":6,"fingerprint":"e03e8458d2e5a23f"}"#,
        ),
    ];
    for (request, expected) in transcript {
        let response = server.handle_line(&request).expect("non-blank line");
        assert_eq!(response, expected, "request: {request}");
    }
}

#[test]
fn blank_lines_are_skipped_not_answered() {
    let mut server = Server::new(ServerConfig::default());
    assert_eq!(server.handle_line(""), None);
    assert_eq!(server.handle_line("   \t "), None);
}

fn error_kind(response: &str) -> String {
    let doc = parulel_engine::Json::parse(response).expect("error frame parses as JSON");
    assert_eq!(
        doc.get("ok"),
        Some(&parulel_engine::Json::Bool(false)),
        "{response}"
    );
    doc.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(|k| k.as_str())
        .unwrap_or_else(|| panic!("no error.kind in {response}"))
        .to_string()
}

#[test]
fn malformed_frames_return_structured_errors() {
    let mut server = Server::new(ServerConfig::default());
    // Truncated JSON.
    let r = server.handle_line(r#"{"op":"open","session":"#).unwrap();
    assert_eq!(error_kind(&r), "parse");
    // Valid JSON, not an object.
    let r = server.handle_line("42").unwrap();
    assert_eq!(error_kind(&r), "protocol");
    // Unknown verb.
    let r = server.handle_line(r#"{"op":"teleport"}"#).unwrap();
    assert_eq!(error_kind(&r), "protocol");
    // Session verb without a session.
    let r = server.handle_line(r#"{"op":"run"}"#).unwrap();
    assert_eq!(error_kind(&r), "protocol");
    // Inject to a session that was never opened.
    let r = server
        .handle_line(r#"{"op":"inject","session":"ghost","adds":[]}"#)
        .unwrap();
    assert_eq!(error_kind(&r), "unknown-session");
    // Program that does not compile (the message carries line:col).
    let r = server
        .handle_line(r#"{"op":"open","session":"bad","program":"(p broken"}"#)
        .unwrap();
    assert_eq!(error_kind(&r), "compile");
    // The server survived all of it.
    let r = server.handle_line(r#"{"op":"ping"}"#).unwrap();
    assert_eq!(r, r#"{"ok":true,"op":"ping"}"#);
}

#[test]
fn inject_to_closed_session_is_unknown() {
    let mut server = Server::new(ServerConfig::default());
    server.handle_line(&open_frame("s1")).unwrap();
    let r = server.handle_line(r#"{"op":"close","session":"s1"}"#).unwrap();
    assert!(r.starts_with(r#"{"ok":true"#), "{r}");
    let r = server
        .handle_line(r#"{"op":"inject","session":"s1","adds":[{"class":"edge","fields":[9,9]}]}"#)
        .unwrap();
    assert_eq!(error_kind(&r), "unknown-session");
}

#[test]
fn inject_validation_rejects_bad_classes_and_arities() {
    let mut server = Server::new(ServerConfig::default());
    server.handle_line(&open_frame("s1")).unwrap();
    for bad in [
        r#"{"op":"inject","session":"s1","adds":[{"class":"nosuch","fields":[1,2]}]}"#,
        r#"{"op":"inject","session":"s1","adds":[{"class":"edge","fields":[1,2,3]}]}"#,
        r#"{"op":"inject","session":"s1","adds":[{"class":"edge","fields":[1,null]}]}"#,
        r#"{"op":"inject","session":"s1","removes":[-1]}"#,
        r#"{"op":"inject","session":"s1"}"#,
    ] {
        let r = server.handle_line(bad).unwrap();
        assert_eq!(error_kind(&r), "protocol", "frame: {bad}");
    }
    // The session is still healthy after every rejected inject.
    let r = server.handle_line(r#"{"op":"run","session":"s1"}"#).unwrap();
    assert!(r.contains(r#""status":"quiescent""#), "{r}");
}

#[test]
fn admission_and_duplicate_opens_are_refused() {
    let mut server = Server::new(ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    });
    server.handle_line(&open_frame("s1")).unwrap();
    let r = server.handle_line(&open_frame("s1")).unwrap();
    assert_eq!(error_kind(&r), "session-exists");
    let r = server.handle_line(&open_frame("s2")).unwrap();
    assert_eq!(error_kind(&r), "admission");
    // Closing frees the slot.
    server.handle_line(r#"{"op":"close","session":"s1"}"#).unwrap();
    let r = server.handle_line(&open_frame("s2")).unwrap();
    assert!(r.starts_with(r#"{"ok":true"#), "{r}");
}

#[test]
fn backpressure_refuses_the_whole_frame() {
    let mut server = Server::new(ServerConfig {
        inject_queue: 3,
        ..ServerConfig::default()
    });
    server.handle_line(&open_frame("s1")).unwrap();
    let inject2 =
        r#"{"op":"inject","session":"s1","adds":[{"class":"edge","fields":[5,6]},{"class":"edge","fields":[6,7]}]}"#;
    let r = server.handle_line(inject2).unwrap();
    assert!(r.contains(r#""depth":2"#), "{r}");
    // 2 queued + 2 new > 3: refused whole, depth unchanged.
    let r = server.handle_line(inject2).unwrap();
    assert_eq!(error_kind(&r), "backpressure");
    let r = server.handle_line(r#"{"op":"metrics","session":"s1"}"#).unwrap();
    assert!(r.contains(r#""queue_depth":2"#), "{r}");
    // Draining with run frees the queue; the refused adds never landed.
    let r = server.handle_line(r#"{"op":"run","session":"s1"}"#).unwrap();
    assert!(r.contains(r#""drained":2"#), "{r}");
    let r = server.handle_line(inject2).unwrap();
    assert!(r.starts_with(r#"{"ok":true"#), "{r}");
}

#[test]
fn snapshot_restore_roundtrip_over_the_wire() {
    let mut server = Server::new(ServerConfig::default());
    server.handle_line(&open_frame("s1")).unwrap();
    let run = server.handle_line(r#"{"op":"run","session":"s1"}"#).unwrap();
    let fingerprint = parulel_engine::Json::parse(&run)
        .unwrap()
        .get("fingerprint")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let snap = server
        .handle_line(r#"{"op":"snapshot","session":"s1"}"#)
        .unwrap();
    let doc = parulel_engine::Json::parse(&snap).unwrap();
    let hex = doc.get("snapshot").unwrap().as_str().unwrap().to_string();
    assert_eq!(doc.get("cycle").unwrap().as_f64(), Some(2.0));
    // Mutate past the capture point…
    server
        .handle_line(r#"{"op":"inject","session":"s1","adds":[{"class":"edge","fields":[3,1]}]}"#)
        .unwrap();
    let r = server.handle_line(r#"{"op":"run","session":"s1"}"#).unwrap();
    assert!(!r.contains(&fingerprint), "WM should have changed: {r}");
    // …and rewind.
    let restore = format!(r#"{{"op":"restore","session":"s1","snapshot":"{hex}"}}"#);
    let r = server.handle_line(&restore).unwrap();
    assert!(r.contains(r#""cycle":2"#), "{r}");
    let r = server.handle_line(r#"{"op":"metrics","session":"s1"}"#).unwrap();
    assert!(r.contains(&fingerprint), "restore should rewind the WM: {r}");
    // Bad payloads are structured errors, not panics.
    let r = server
        .handle_line(r#"{"op":"restore","session":"s1","snapshot":"zz"}"#)
        .unwrap();
    assert_eq!(error_kind(&r), "snapshot");
    let r = server
        .handle_line(r#"{"op":"restore","session":"s1","snapshot":"deadbeef"}"#)
        .unwrap();
    assert_eq!(error_kind(&r), "snapshot");
}

#[test]
fn malformed_restore_payloads_leave_prior_state_intact() {
    let mut server = Server::new(ServerConfig::default());
    server.handle_line(&open_frame("s1")).unwrap();
    let run = server.handle_line(r#"{"op":"run","session":"s1"}"#).unwrap();
    let fingerprint = parulel_engine::Json::parse(&run)
        .unwrap()
        .get("fingerprint")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let snap = server
        .handle_line(r#"{"op":"snapshot","session":"s1"}"#)
        .unwrap();
    let hex = parulel_engine::Json::parse(&snap)
        .unwrap()
        .get("snapshot")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    // A gallery of broken payloads: odd-length hex, non-hex characters,
    // a truncated (but even-length, valid-hex) snapshot, a snapshot
    // whose magic is wrong, a missing field, and a payload of the wrong
    // type.
    let truncated = &hex[..hex.len() / 2 - (hex.len() / 2) % 2];
    let corrupted = format!("00{}", &hex[2..]);
    let cases = vec![
        (r#"{"op":"restore","session":"s1","snapshot":"abc"}"#.to_string(), "snapshot"),
        (r#"{"op":"restore","session":"s1","snapshot":"zz"}"#.to_string(), "snapshot"),
        (
            format!(r#"{{"op":"restore","session":"s1","snapshot":"{truncated}"}}"#),
            "snapshot",
        ),
        (
            format!(r#"{{"op":"restore","session":"s1","snapshot":"{corrupted}"}}"#),
            "snapshot",
        ),
        (r#"{"op":"restore","session":"s1"}"#.to_string(), "protocol"),
        (r#"{"op":"restore","session":"s1","snapshot":17}"#.to_string(), "protocol"),
    ];
    for (frame, want_kind) in cases {
        let r = server.handle_line(&frame).unwrap();
        assert_eq!(error_kind(&r), want_kind, "frame: {frame}");
        // Prior state intact after every refusal.
        let m = server.handle_line(r#"{"op":"metrics","session":"s1"}"#).unwrap();
        assert!(m.contains(&fingerprint), "state lost after {frame}: {m}");
    }
    // And the session still accepts a *valid* restore afterwards.
    let r = server
        .handle_line(&format!(r#"{{"op":"restore","session":"s1","snapshot":"{hex}"}}"#))
        .unwrap();
    assert!(r.starts_with(r#"{"ok":true"#), "{r}");
}

#[test]
fn metrics_report_and_trace_are_available_per_session() {
    let mut server = Server::new(ServerConfig::default());
    server.handle_line(&open_frame("s1")).unwrap();
    server.handle_line(r#"{"op":"run","session":"s1"}"#).unwrap();
    let r = server
        .handle_line(r#"{"op":"metrics","session":"s1","report":true}"#)
        .unwrap();
    let doc = parulel_engine::Json::parse(&r).unwrap();
    let report = doc.get("report").expect("report payload");
    assert_eq!(
        report.get("schema").and_then(|s| s.as_str()),
        Some("parulel-metrics/v1")
    );
    let r = server.handle_line(r#"{"op":"trace","session":"s1"}"#).unwrap();
    let doc = parulel_engine::Json::parse(&r).unwrap();
    let jsonl = doc.get("jsonl").unwrap().as_str().unwrap();
    assert!(jsonl.lines().next().unwrap().contains("parulel-trace/v1"));
    assert!(doc.get("events").unwrap().as_f64().unwrap() > 0.0);
}

#[test]
fn budget_trip_kills_one_session_with_an_engine_frame() {
    let mut server = Server::new(ServerConfig::default());
    let open = format!(
        r#"{{"op":"open","session":"doomed","program":"{}","max_wm":4}}"#,
        PROGRAM.replace('\\', "\\\\").replace('"', "\\\"")
    );
    server.handle_line(&open).unwrap();
    server.handle_line(&open_frame("bystander")).unwrap();
    let r = server.handle_line(r#"{"op":"run","session":"doomed"}"#).unwrap();
    let doc = parulel_engine::Json::parse(&r).unwrap();
    assert_eq!(doc.get("ok"), Some(&parulel_engine::Json::Bool(false)));
    let err = doc.get("error").unwrap();
    assert_eq!(err.get("kind").and_then(|k| k.as_str()), Some("engine"));
    assert_eq!(err.get("engine_kind").and_then(|k| k.as_str()), Some("wm"));
    assert!(err.get("cycle").unwrap().as_f64().unwrap() >= 1.0);
    assert_eq!(doc.get("closed"), Some(&parulel_engine::Json::Bool(true)));
    // The doomed session is gone; the bystander is untouched.
    let r = server.handle_line(r#"{"op":"run","session":"doomed"}"#).unwrap();
    assert_eq!(error_kind(&r), "unknown-session");
    let r = server
        .handle_line(r#"{"op":"run","session":"bystander"}"#)
        .unwrap();
    assert!(r.contains(r#""status":"quiescent""#), "{r}");
}

/// A gallery of reload payloads that must be *refused*, each leaving
/// the session exactly as it was: missing/mistyped program field,
/// source that does not compile, and replacement programs whose class
/// table is incompatible with the live working memory (dropped class,
/// reordered classes, changed arity). A compile error is kind
/// `compile`; an incompatible-but-valid program is kind `reload`.
#[test]
fn malformed_reload_payloads_leave_prior_state_intact() {
    let mut server = Server::new(ServerConfig::default());
    server.handle_line(&open_frame("s1")).unwrap();
    let run = server.handle_line(r#"{"op":"run","session":"s1"}"#).unwrap();
    let fingerprint = parulel_engine::Json::parse(&run)
        .unwrap()
        .get("fingerprint")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let cases: Vec<(String, &str)> = vec![
        (r#"{"op":"reload","session":"s1"}"#.to_string(), "protocol"),
        (r#"{"op":"reload","session":"s1","program":17}"#.to_string(), "protocol"),
        (reload_frame("s1", "(p broken"), "compile"),
        // Drops the `reach` class the live WM depends on.
        (
            reload_frame("s1", "(literalize edge from to)(p noop (edge ^from <a>) --> (write <a>))"),
            "reload",
        ),
        // Same classes, swapped declaration order: class ids shift.
        (
            reload_frame(
                "s1",
                "(literalize reach from to)(literalize edge from to)(p noop (edge ^from <a>) --> (write <a>))",
            ),
            "reload",
        ),
        // `edge` narrowed to arity 1.
        (
            reload_frame(
                "s1",
                "(literalize edge from)(literalize reach from to)(p noop (edge ^from <a>) --> (write <a>))",
            ),
            "reload",
        ),
    ];
    for (frame, want_kind) in cases {
        let r = server.handle_line(&frame).unwrap();
        assert_eq!(error_kind(&r), want_kind, "frame: {frame}");
        let m = server.handle_line(r#"{"op":"metrics","session":"s1"}"#).unwrap();
        assert!(m.contains(&fingerprint), "state lost after {frame}: {m}");
    }
    // The session still accepts a valid reload and keeps running.
    let r = server.handle_line(&reload_frame("s1", PROGRAM_V2)).unwrap();
    assert!(r.contains(r#""added":["audit"]"#), "{r}");
    let r = server.handle_line(r#"{"op":"run","session":"s1"}"#).unwrap();
    assert!(r.contains(r#""status":"quiescent""#), "{r}");
    // Reload to a session that does not exist.
    let r = server.handle_line(&reload_frame("ghost", PROGRAM)).unwrap();
    assert_eq!(error_kind(&r), "unknown-session");
}
