//! Scheduler integration tests: the sharded session scheduler and its
//! `poll(2)` dispatcher, driven over real TCP sockets.
//!
//! What is pinned here:
//!
//! * **Byte compatibility** — at `--workers 1` the scheduler answers
//!   the exact golden transcript the single-lock server answers, byte
//!   for byte, even though `run` frames now execute in step-quantum
//!   slices.
//! * **Shard equivalence** — at `--workers 4` the same workload gives
//!   the same fingerprints, and merged control frames (`metrics`,
//!   `shutdown`) account for every shard.
//! * **Fairness/liveness** — neighbor sessions get answers *while* a
//!   long `run` is in flight on the same shard, with bounded latency,
//!   and their state is byte-identical to running alone.
//! * **Shutdown drain** — a `shutdown` racing a parked `run` completes
//!   the run (the response is delivered, the WAL persists post-run
//!   state) before the daemon exits; recovery equals the uninterrupted
//!   reference.
//! * **Admission churn** — closed and killed sessions release their
//!   admission slots immediately, standalone and across shards sharing
//!   one gauge.

use parulel_server::{
    recover, spawn_sched_tcp, EventLoopOpts, Server, ServerConfig, WalConfig,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The transitive-closure program the protocol goldens use.
const PROGRAM: &str = "(literalize edge from to)\
(literalize reach from to)\
(p seed (edge ^from <a> ^to <b>) -(reach ^from <a> ^to <b>) --> (make reach ^from <a> ^to <b>))\
(p close (reach ^from <a> ^to <b>) (edge ^from <b> ^to <c>) -(reach ^from <a> ^to <c>) --> (make reach ^from <a> ^to <c>))\
(wm (edge ^from 1 ^to 2) (edge ^from 2 ^to 3))";

fn open_frame(session: &str) -> String {
    format!(
        r#"{{"op":"open","session":"{session}","program":"{}"}}"#,
        PROGRAM.replace('\\', "\\\\").replace('"', "\\\"")
    )
}

fn chain_inject(session: &str, from: i64, to: i64) -> String {
    let adds: Vec<String> = (from..to)
        .map(|i| format!(r#"{{"class":"edge","fields":[{i},{}]}}"#, i + 1))
        .collect();
    format!(
        r#"{{"op":"inject","session":"{session}","adds":[{}]}}"#,
        adds.join(",")
    )
}

fn field<'a>(response: &'a str, key: &str) -> &'a str {
    let tag = format!("\"{key}\":\"");
    let start = response
        .find(&tag)
        .unwrap_or_else(|| panic!("no {key} in {response}"))
        + tag.len();
    let end = start + response[start..].find('"').unwrap();
    &response[start..end]
}

/// Starts a sharded daemon on an ephemeral port. `servers` must already
/// share one admission gauge when `len > 1` (see `shard_servers`).
fn start(servers: Vec<Server>, quantum: u64) -> (SocketAddr, std::thread::JoinHandle<()>) {
    spawn_sched_tcp(servers, quantum, 256, "127.0.0.1:0", EventLoopOpts::default())
        .expect("bind scheduler")
}

/// `workers` servers wired the way the CLI wires them: one shared
/// admission gauge and shutdown flag.
fn shard_servers(config: &ServerConfig, workers: usize) -> Vec<Server> {
    let mut servers: Vec<Server> = Vec::with_capacity(workers);
    for _ in 0..workers {
        let mut server = Server::new(config.clone());
        if let Some(first) = servers.first() {
            server.share_admission(first.admission_gauge(), first.shutdown_signal());
        }
        servers.push(server);
    }
    servers
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send(&mut self, frame: &str) {
        self.writer.write_all(frame.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        assert!(!line.is_empty(), "connection closed mid-transcript");
        line.trim_end().to_string()
    }

    fn roundtrip(&mut self, frame: &str) -> String {
        self.send(frame);
        self.recv()
    }

    fn send_ok(&mut self, frame: &str) -> String {
        let response = self.roundtrip(frame);
        assert!(response.starts_with(r#"{"ok":true"#), "{frame} -> {response}");
        response
    }
}

#[test]
fn golden_transcript_byte_for_byte_at_one_worker() {
    // Quantum 2 forces the 3-cycle golden run through multiple slices:
    // the sliced path must still produce the exact golden bytes.
    let (addr, daemon) = start(shard_servers(&ServerConfig::default(), 1), 2);
    let mut client = Client::connect(addr);
    let open = open_frame("s1");
    let transcript: Vec<(&str, &str)> = vec![
        (
            open.as_str(),
            r#"{"ok":true,"op":"open","session":"s1","policy":"fire-all","rules":2,"wm":2}"#,
        ),
        (
            r#"{"op":"inject","session":"s1","adds":[{"class":"edge","fields":[3,4]}]}"#,
            r#"{"ok":true,"op":"inject","session":"s1","queued":1,"depth":1}"#,
        ),
        (
            r#"{"op":"run","session":"s1"}"#,
            r#"{"ok":true,"op":"run","session":"s1","drained":1,"status":"quiescent","cycles":3,"firings":6,"wm":9,"fingerprint":"735c3f975f38542b"}"#,
        ),
        (
            r#"{"op":"query","session":"s1","class":"reach"}"#,
            r#"{"ok":true,"op":"query","session":"s1","class":"reach","count":6,"returned":6,"facts":[[1,2],[1,3],[1,4],[2,3],[2,4],[3,4]]}"#,
        ),
        (
            r#"{"op":"metrics","session":"s1"}"#,
            r#"{"ok":true,"op":"metrics","session":"s1","cycles":3,"firings":6,"redacted_meta":0,"redacted_guard":0,"peak_eligible":3,"wm":9,"queue_depth":0,"injected_adds":1,"injected_removes":0,"halted":false,"fingerprint":"735c3f975f38542b"}"#,
        ),
        (
            r#"{"op":"metrics"}"#,
            r#"{"ok":true,"op":"metrics","sessions":1,"peak_sessions":1,"max_sessions":64,"frames":6,"errors":0,"session_list":["s1"]}"#,
        ),
        (
            r#"{"op":"close","session":"s1"}"#,
            r#"{"ok":true,"op":"close","session":"s1","cycles":3,"firings":6,"fingerprint":"735c3f975f38542b"}"#,
        ),
        (
            r#"{"op":"shutdown"}"#,
            r#"{"ok":true,"op":"shutdown","sessions_closed":0}"#,
        ),
    ];
    for (request, expected) in transcript {
        assert_eq!(client.roundtrip(request), expected, "request: {request}");
    }
    daemon.join().expect("daemon exits after shutdown");
}

#[test]
fn four_workers_answer_like_one() {
    let sessions = ["alpha", "beta", "gamma", "delta", "epsilon"];

    // Reference: each session's workload alone on a plain server.
    let mut reference = Server::new(ServerConfig::default());
    reference.handle_line(&open_frame("solo")).unwrap();
    reference
        .handle_line(&chain_inject("solo", 3, 8))
        .unwrap();
    let run = reference
        .handle_line(r#"{"op":"run","session":"solo"}"#)
        .unwrap();
    let expected = field(&run, "fingerprint").to_string();

    let (addr, daemon) = start(shard_servers(&ServerConfig::default(), 4), 4);
    let mut client = Client::connect(addr);
    for name in &sessions {
        client.send_ok(&open_frame(name));
        client.send_ok(&chain_inject(name, 3, 8));
    }
    for name in &sessions {
        let run = client.send_ok(&format!(r#"{{"op":"run","session":"{name}"}}"#));
        assert_eq!(field(&run, "fingerprint"), expected, "session {name}");
    }
    // Merged server-level metrics must account for every shard.
    let metrics = client.send_ok(r#"{"op":"metrics"}"#);
    let doc = parulel_engine::Json::parse(&metrics).unwrap();
    assert_eq!(
        doc.get("sessions").and_then(parulel_engine::Json::as_f64),
        Some(5.0),
        "{metrics}"
    );
    let listed = doc
        .get("session_list")
        .and_then(parulel_engine::Json::as_arr)
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_str())
                .map(str::to_string)
                .collect::<Vec<_>>()
        })
        .unwrap();
    let mut want: Vec<String> = sessions.iter().map(|s| s.to_string()).collect();
    want.sort();
    assert_eq!(listed, want, "{metrics}");
    let merged = client.roundtrip(r#"{"op":"shutdown"}"#);
    let doc = parulel_engine::Json::parse(&merged).unwrap();
    assert_eq!(
        doc.get("sessions_closed")
            .and_then(parulel_engine::Json::as_f64),
        Some(5.0),
        "{merged}"
    );
    daemon.join().expect("daemon exits");
}

/// Satellite 3 — the headline fairness proof. One session starts a long
/// closure `run`; seven neighbor sessions on the *same shard* (workers
/// = 1, so interleaving can only come from step-quantum slicing) keep
/// pinging and injecting concurrently. Every neighbor frame must be
/// answered while the victim's run is still in flight, within a bound,
/// and neighbor state must match running alone.
#[test]
fn neighbors_stay_live_behind_a_long_run() {
    let neighbors = 7usize;
    let config = ServerConfig::default();

    // Solo goldens for the neighbor workload.
    let mut reference = Server::new(config.clone());
    reference.handle_line(&open_frame("solo")).unwrap();
    reference.handle_line(&chain_inject("solo", 3, 6)).unwrap();
    let run = reference
        .handle_line(r#"{"op":"run","session":"solo"}"#)
        .unwrap();
    let solo_fingerprint = field(&run, "fingerprint").to_string();

    let (addr, daemon) = start(shard_servers(&config, 1), 4);

    // The victim: a closure over a long chain, hundreds of cycles. A
    // separate thread waits for the response and timestamps its
    // arrival, so neighbor progress can be compared against it.
    let mut victim = Client::connect(addr);
    victim.send_ok(&open_frame("victim"));
    victim.send_ok(&chain_inject("victim", 3, 160));
    let run_started = Instant::now();
    victim.send(r#"{"op":"run","session":"victim"}"#);
    let victim_thread = std::thread::spawn(move || {
        let run = victim.recv();
        (run, Instant::now())
    });

    // Neighbors drive their own connections while the run is parked.
    let handles: Vec<_> = (0..neighbors)
        .map(|i| {
            let name = format!("n{i}");
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut latencies: Vec<Duration> = Vec::new();
                let mut timed = |c: &mut Client, frame: &str| {
                    let t = Instant::now();
                    let r = c.send_ok(frame);
                    latencies.push(t.elapsed());
                    r
                };
                timed(&mut client, &open_frame(&name));
                timed(&mut client, &chain_inject(&name, 3, 6));
                let run = timed(&mut client, &format!(r#"{{"op":"run","session":"{name}"}}"#));
                let fingerprint = field(&run, "fingerprint").to_string();
                for _ in 0..10 {
                    timed(&mut client, r#"{"op":"ping"}"#);
                }
                (fingerprint, latencies, Instant::now())
            })
        })
        .collect();

    let mut all_latencies: Vec<Duration> = Vec::new();
    let mut neighbors_done = run_started;
    for handle in handles {
        let (fingerprint, latencies, done) = handle.join().expect("neighbor thread");
        assert_eq!(
            fingerprint, solo_fingerprint,
            "neighbor state diverged from running alone"
        );
        all_latencies.extend(latencies);
        neighbors_done = neighbors_done.max(done);
    }

    let (run, victim_done) = victim_thread.join().expect("victim thread");
    assert!(run.starts_with(r#"{"ok":true,"op":"run""#), "{run}");
    assert_eq!(field(&run, "status"), "quiescent", "{run}");
    let victim_wall = victim_done - run_started;

    // Liveness: when the run is genuinely long, every neighbor finished
    // its whole script while the run was still in flight — served
    // *during* the closure, not after it. (Guarded so a surprisingly
    // fast box cannot turn a fairness proof into a flake.)
    if victim_wall > Duration::from_secs(1) {
        assert!(
            neighbors_done < victim_done,
            "neighbors only finished after the victim's {victim_wall:?} run"
        );
    }
    // Fairness: neighbor p99 is bounded. The bound is deliberately
    // loose for 1-CPU CI boxes; without slicing these frames wait for
    // the entire multi-second run, so the assertion still has teeth.
    all_latencies.sort();
    let p99 = all_latencies[(all_latencies.len() * 99) / 100 - 1];
    let bound = Duration::from_secs(2)
        .min(victim_wall / 2)
        .max(Duration::from_millis(250));
    assert!(
        p99 < bound,
        "neighbor p99 {p99:?} over bound {bound:?} (victim wall {victim_wall:?})"
    );
    Client::connect(addr).send_ok(r#"{"op":"shutdown"}"#);
    daemon.join().expect("daemon exits");
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parulel-sched-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Satellite 2 — `shutdown` racing a parked run. The run must drain to
/// completion (its response delivered, its post-run state persisted)
/// before the daemon exits, and a restart must recover state identical
/// to an uninterrupted reference.
#[test]
fn shutdown_drains_inflight_runs_before_persisting() {
    let config = ServerConfig::default();

    // Uninterrupted reference: same workload, no shutdown race.
    let mut reference = Server::new(config.clone());
    reference.handle_line(&open_frame("solo")).unwrap();
    reference
        .handle_line(&chain_inject("solo", 3, 120))
        .unwrap();
    let run = reference
        .handle_line(r#"{"op":"run","session":"solo"}"#)
        .unwrap();
    let expected = field(&run, "fingerprint").to_string();

    let dir = tmp_dir("drain");
    let wal = WalConfig::new(&dir, parulel_server::SyncPolicy::Always);
    let mut servers = Vec::new();
    for _ in 0..2 {
        let mut server = Server::with_wal(config.clone(), wal.clone());
        if let Some(first) = servers.first() {
            let first: &Server = first;
            server.share_admission(first.admission_gauge(), first.shutdown_signal());
        }
        servers.push(server);
    }
    let (addr, daemon) = start(servers, 4);

    let mut client = Client::connect(addr);
    client.send_ok(&open_frame("victim"));
    client.send_ok(&chain_inject("victim", 3, 120));
    client.send(r#"{"op":"run","session":"victim"}"#);
    // Give the dispatcher time to route the frame and its shard time to
    // park the run mid-quantum. (If the run somehow finishes first the
    // test still checks response delivery and recovery — it just stops
    // exercising the race.)
    std::thread::sleep(Duration::from_millis(200));

    // Race the shutdown from a second connection.
    let mut second = Client::connect(addr);
    let merged = second.roundtrip(r#"{"op":"shutdown"}"#);
    assert!(merged.starts_with(r#"{"ok":true,"op":"shutdown""#), "{merged}");

    // The parked run's response still arrives, fully drained.
    let run = client.recv();
    assert!(run.contains("\"op\":\"run\""), "{run}");
    assert_eq!(field(&run, "status"), "quiescent", "{run}");
    assert_eq!(field(&run, "fingerprint"), expected, "{run}");
    daemon.join().expect("daemon exits");

    // Recovery on the same WAL dir equals the uninterrupted reference.
    let mut recovered = Server::with_wal(config, wal.clone());
    let report = recover(&mut recovered, &wal);
    assert_eq!(report.sessions_recovered, 1, "{:?}", report.notes);
    let run = recovered
        .handle_line(r#"{"op":"run","session":"victim"}"#)
        .unwrap();
    assert_eq!(field(&run, "fingerprint"), expected, "{run}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 6 — admission accounting. Slots free the moment a session
/// closes or dies; a daemon at `max_sessions` forever is a leak, not a
/// policy.
#[test]
fn closed_sessions_release_admission_slots() {
    let config = ServerConfig {
        max_sessions: 2,
        ..ServerConfig::default()
    };
    let mut server = Server::new(config);
    server.handle_line(&open_frame("a")).unwrap();
    server.handle_line(&open_frame("b")).unwrap();
    let refused = server.handle_line(&open_frame("c")).unwrap();
    assert!(refused.contains("\"admission\""), "{refused}");
    // Churn far past the limit: close → open must always succeed.
    for i in 0..20 {
        let close = server
            .handle_line(&format!(r#"{{"op":"close","session":"{}"}}"#, if i == 0 { "a".into() } else { format!("churn{}", i - 1) }))
            .unwrap();
        assert!(close.starts_with(r#"{"ok":true"#), "{close}");
        let open = server.handle_line(&open_frame(&format!("churn{i}"))).unwrap();
        assert!(open.starts_with(r#"{"ok":true"#), "iteration {i}: {open}");
    }
    // A session killed by a budget trip (not politely closed) must
    // release its slot too.
    let open = server
        .handle_line(&format!(
            r#"{{"op":"open","session":"doomed","program":"{}","max_wm":4}}"#,
            PROGRAM.replace('\\', "\\\\").replace('"', "\\\"")
        ))
        .unwrap();
    assert!(
        open.starts_with(r#"{"ok":false"#),
        "two live sessions already: {open}"
    );
    server
        .handle_line(r#"{"op":"close","session":"churn19"}"#)
        .unwrap();
    let open = server
        .handle_line(&format!(
            r#"{{"op":"open","session":"doomed","program":"{}","max_wm":4}}"#,
            PROGRAM.replace('\\', "\\\\").replace('"', "\\\"")
        ))
        .unwrap();
    assert!(open.starts_with(r#"{"ok":true"#), "{open}");
    let run = server
        .handle_line(r#"{"op":"run","session":"doomed"}"#)
        .unwrap();
    assert!(run.starts_with(r#"{"ok":false"#), "max_wm 4 must trip: {run}");
    // The engine death closed the session — its slot must be free.
    let open = server.handle_line(&open_frame("replacement")).unwrap();
    assert!(open.starts_with(r#"{"ok":true"#), "{open}");
}

/// The shared-gauge variant: shards enforce one daemon-wide limit, and
/// a close on one shard frees a slot an open on another shard can use.
#[test]
fn admission_gauge_is_shared_across_shards() {
    let config = ServerConfig {
        max_sessions: 2,
        ..ServerConfig::default()
    };
    let (addr, daemon) = start(shard_servers(&config, 4), 4);
    let mut client = Client::connect(addr);
    client.send_ok(&open_frame("a"));
    client.send_ok(&open_frame("b"));
    let refused = client.roundtrip(&open_frame("c"));
    assert!(refused.contains("\"admission\""), "{refused}");
    for i in 0..8 {
        let victim = if i == 0 { "a".to_string() } else { format!("churn{}", i - 1) };
        client.send_ok(&format!(r#"{{"op":"close","session":"{victim}"}}"#));
        client.send_ok(&open_frame(&format!("churn{i}")));
    }
    let merged = client.roundtrip(r#"{"op":"shutdown"}"#);
    let doc = parulel_engine::Json::parse(&merged).unwrap();
    assert_eq!(
        doc.get("sessions_closed")
            .and_then(parulel_engine::Json::as_f64),
        Some(2.0),
        "{merged}"
    );
    daemon.join().expect("daemon exits");
}
