//! # parulel-workloads
//!
//! Benchmark rule programs for the PARULEL reproduction — the standard
//! repertoire of parallel-production-system evaluation, parameterized by
//! size and RNG seed, each with a Rust reference validator for its final
//! working memory.
//!
//! | Scenario | Flavor | Stresses |
//! |---|---|---|
//! | [`closure::Closure`] | transitive closure over a random digraph | pure make rules, wide confluent parallelism, negation for dedup |
//! | [`labelprop::LabelProp`] | connected components by min-label propagation | modify conflicts resolved *entirely* by meta-rules |
//! | [`seating::Seating`] | Miss-Manners-style alternating seating at many tables | one-choice-per-seat meta redaction, inter-table parallelism |
//! | [`market::Market`] | order matching (OLTP flavor) | double-fill prevention via mutual-best meta-rules, remove-heavy |
//! | [`waltz::Waltz`] | Waltz-style constraint label pruning on a ring | negation-based support checks, deletion waves |
//! | [`waltzdb::WaltzDb`] | grid WaltzDB: degree-2/3/4 junction dictionaries | deeper join chains, per-degree rule variety |
//!
//! All programs are generated as PARULEL *source text* and compiled with
//! `parulel-lang`, so the whole pipeline is exercised; call
//! [`Scenario::source`] to read the generated program.

#![warn(missing_docs)]

pub mod closure;
pub mod labelprop;
pub mod market;
pub mod seating;
pub mod waltz;
pub mod waltzdb;

pub use closure::Closure;
pub use labelprop::LabelProp;
pub use market::Market;
pub use seating::Seating;
pub use waltz::Waltz;
pub use waltzdb::WaltzDb;

use parulel_core::{Program, WorkingMemory};

/// A benchmark scenario: a compiled program, an initial working memory,
/// and a validator for the final state.
pub trait Scenario: Send + Sync {
    /// Scenario name (used in bench tables).
    fn name(&self) -> &str;

    /// The generated PARULEL source.
    fn source(&self) -> &str;

    /// The compiled program.
    fn program(&self) -> &Program;

    /// A fresh copy of the initial working memory.
    fn initial_wm(&self) -> WorkingMemory;

    /// Checks the final working memory against a Rust reference
    /// implementation of the scenario's specification.
    fn validate(&self, wm: &WorkingMemory) -> Result<(), String>;
}

/// The default-size instance of every scenario (used by integration tests
/// and Table 1).
pub fn all_default() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(Closure::new(24, 40, 7)),
        Box::new(LabelProp::new(40, 48, 11)),
        Box::new(Seating::new(4, 8, 3)),
        Box::new(Market::new(40, 8, 5)),
        Box::new(Waltz::new(24, 5, 13)),
        Box::new(WaltzDb::new(4, 4, 4, 17)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_six_distinct_scenarios() {
        let all = all_default();
        assert_eq!(all.len(), 6);
        let mut names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn every_scenario_compiles_and_has_facts() {
        for s in all_default() {
            assert!(!s.program().rules().is_empty(), "{}", s.name());
            assert!(!s.initial_wm().is_empty(), "{}", s.name());
            assert!(!s.source().is_empty(), "{}", s.name());
        }
    }
}
