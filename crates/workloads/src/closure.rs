//! Transitive closure over a random digraph.
//!
//! The "embarrassingly parallel" end of the suite: `reach` facts are pure
//! derivations (make-only), every frontier expands in one PARULEL cycle
//! (semi-naive evaluation falls out of the set-oriented semantics), and
//! negated CEs keep the derivation duplicate-free. Cycles-to-fixpoint
//! equals the graph diameter — compare with the serial engine, which needs
//! one cycle per derived fact.

use crate::Scenario;
use parulel_core::{FxHashSet, Program, Value, WorkingMemory};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SOURCE: &str = "
(literalize edge from to)
(literalize reach from to)
(p seed
  (edge ^from <a> ^to <b>)
  -(reach ^from <a> ^to <b>)
 -->
  (make reach ^from <a> ^to <b>))
(p close
  (reach ^from <a> ^to <b>)
  (edge ^from <b> ^to <c>)
  -(reach ^from <a> ^to <c>)
 -->
  (make reach ^from <a> ^to <c>))
";

/// The transitive-closure scenario.
pub struct Closure {
    name: String,
    program: Program,
    edges: Vec<(i64, i64)>,
    expected: FxHashSet<(i64, i64)>,
}

impl Closure {
    /// A random digraph with `nodes` vertices and `edges` distinct arcs.
    pub fn new(nodes: usize, edges: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut set = FxHashSet::default();
        let mut list = Vec::new();
        // A spine keeps the graph connected enough to have interesting
        // diameter; the rest is random.
        for i in 0..nodes.saturating_sub(1) {
            let e = (i as i64, i as i64 + 1);
            if set.insert(e) {
                list.push(e);
            }
            if list.len() >= edges {
                break;
            }
        }
        while list.len() < edges {
            let a = rng.gen_range(0..nodes) as i64;
            let b = rng.gen_range(0..nodes) as i64;
            if set.insert((a, b)) {
                list.push((a, b));
            }
        }
        let expected = reference_closure(&list);
        Closure {
            name: format!("closure(n={nodes},e={})", list.len()),
            program: parulel_lang::compile(SOURCE).expect("closure program compiles"),
            edges: list,
            expected,
        }
    }

    /// The generated arcs.
    pub fn edges(&self) -> &[(i64, i64)] {
        &self.edges
    }

    /// Size of the reference closure (row count of the answer).
    pub fn expected_len(&self) -> usize {
        self.expected.len()
    }
}

/// Reference closure by BFS from every source.
fn reference_closure(edges: &[(i64, i64)]) -> FxHashSet<(i64, i64)> {
    let mut out: FxHashSet<(i64, i64)> = FxHashSet::default();
    let mut frontier: Vec<(i64, i64)> = edges.to_vec();
    out.extend(frontier.iter().copied());
    while let Some((a, b)) = frontier.pop() {
        for &(x, y) in edges {
            if x == b && out.insert((a, y)) {
                frontier.push((a, y));
            }
        }
    }
    out
}

impl Scenario for Closure {
    fn name(&self) -> &str {
        &self.name
    }

    fn source(&self) -> &str {
        SOURCE
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn initial_wm(&self) -> WorkingMemory {
        let mut wm = WorkingMemory::new(&self.program.classes);
        let edge = self
            .program
            .classes
            .id_of(self.program.interner.intern("edge"))
            .unwrap();
        for &(a, b) in &self.edges {
            wm.insert(edge, vec![Value::Int(a), Value::Int(b)]);
        }
        wm
    }

    fn validate(&self, wm: &WorkingMemory) -> Result<(), String> {
        let reach = self
            .program
            .classes
            .id_of(self.program.interner.intern("reach"))
            .unwrap();
        let mut got: FxHashSet<(i64, i64)> = FxHashSet::default();
        let mut rows = 0usize;
        for w in wm.iter_class(reach) {
            let (Value::Int(a), Value::Int(b)) = (w.field(0), w.field(1)) else {
                return Err("non-integer reach fact".into());
            };
            got.insert((a, b));
            rows += 1;
        }
        if got != self.expected {
            return Err(format!(
                "closure mismatch: got {} pairs, expected {}",
                got.len(),
                self.expected.len()
            ));
        }
        // Duplicates are possible in principle (two derivations in one
        // cycle); the negated CE prevents cross-cycle dupes only. Report
        // them so benches can see the dup rate, but same-cycle double
        // derivation of one pair is legal — only fail on gross blowup.
        if rows > got.len() * 3 {
            return Err(format!("excessive duplicate reach facts: {rows} rows"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_engine::{EngineOptions, ParallelEngine, SerialEngine, Strategy};

    #[test]
    fn parallel_engine_computes_the_closure() {
        let s = Closure::new(12, 18, 42);
        let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = e.run().unwrap();
        assert!(out.quiescent);
        s.validate(e.wm()).unwrap();
        // diameter-bounded cycle count: far fewer cycles than firings
        assert!(out.cycles < out.firings, "{out:?}");
    }

    #[test]
    fn serial_engine_agrees_with_reference() {
        let s = Closure::new(8, 12, 1);
        let mut e = SerialEngine::new(
            s.program(),
            s.initial_wm(),
            Strategy::Lex,
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert!(out.quiescent);
        s.validate(e.wm()).unwrap();
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let a = Closure::new(10, 15, 5);
        let b = Closure::new(10, 15, 5);
        assert_eq!(a.edges(), b.edges());
        let c = Closure::new(10, 15, 6);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn reference_closure_on_a_chain() {
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        let c = reference_closure(&edges);
        assert_eq!(c.len(), 6); // 01 02 03 12 13 23
        assert!(c.contains(&(0, 3)));
        assert!(!c.contains(&(3, 0)));
    }
}
