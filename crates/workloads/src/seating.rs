//! Miss-Manners-style seating at many tables.
//!
//! Each table seats its guests left-to-right with alternating sexes. All
//! tables progress **in parallel** (one seat per table per cycle), while
//! *within* a table the meta-rules pick exactly one guest (the
//! lowest-numbered candidate of the required sex) per seat — the classic
//! "many candidates, one choice" conflict-set shape the original Miss
//! Manners benchmark stresses.
//!
//! Guests are pre-assigned to tables with an exactly-alternating sex
//! multiset, so the greedy choice always completes (no backtracking —
//! PARULEL, like OPS5, is a commit-choice language).

use crate::Scenario;
use parulel_core::{FxHashMap, Program, Value, WorkingMemory};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const SOURCE: &str = "
(literalize guest id table sex)
(literalize seat table pos sex)
(literalize want table pos lastsex)
(p place
  (want ^table <t> ^pos <p> ^lastsex <ls>)
  (guest ^id <g> ^table <t> ^sex { <> <ls> <s> })
 -->
  (make seat ^table <t> ^pos <p> ^sex <s>)
  (modify 1 ^pos (+ <p> 1) ^lastsex <s>)
  (remove 2)
  (write seated <g> at table <t> pos <p>))
(mp lowest-guest-first
  (inst place (want ^table <t>) (guest ^id <g1>))
  (inst place (want ^table <t>) (guest ^id <g2>))
  (test (> <g1> <g2>))
 -->
  (redact 1))
";

/// The seating scenario.
pub struct Seating {
    name: String,
    program: Program,
    tables: usize,
    per_table: usize,
    /// guest id -> (table, sex code 0/1), shuffled assignment order.
    guests: Vec<(i64, i64, &'static str)>,
}

impl Seating {
    /// `tables` tables, each with `per_table` guests (made even so sexes
    /// alternate perfectly).
    pub fn new(tables: usize, per_table: usize, seed: u64) -> Self {
        let per_table = per_table.max(2) & !1; // even
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut guests = Vec::new();
        let mut id = 0i64;
        for t in 0..tables as i64 {
            for k in 0..per_table {
                let sex = if k % 2 == 0 { "m" } else { "f" };
                guests.push((id, t, sex));
                id += 1;
            }
        }
        guests.shuffle(&mut rng);
        Seating {
            name: format!("seating(t={tables},g={per_table})"),
            program: parulel_lang::compile(SOURCE).expect("seating program compiles"),
            tables,
            per_table,
            guests,
        }
    }

    /// Number of tables (the available parallelism).
    pub fn table_count(&self) -> usize {
        self.tables
    }
}

impl Scenario for Seating {
    fn name(&self) -> &str {
        &self.name
    }

    fn source(&self) -> &str {
        SOURCE
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn initial_wm(&self) -> WorkingMemory {
        let mut wm = WorkingMemory::new(&self.program.classes);
        let i = &self.program.interner;
        let guest = self.program.classes.id_of(i.intern("guest")).unwrap();
        let want = self.program.classes.id_of(i.intern("want")).unwrap();
        let none = i.intern("none");
        for &(id, table, sex) in &self.guests {
            wm.insert(
                guest,
                vec![Value::Int(id), Value::Int(table), Value::Sym(i.intern(sex))],
            );
        }
        for t in 0..self.tables as i64 {
            // lastsex starts as a sentinel no sex equals, so either sex
            // may take seat 1.
            wm.insert(want, vec![Value::Int(t), Value::Int(1), Value::Sym(none)]);
        }
        wm
    }

    fn validate(&self, wm: &WorkingMemory) -> Result<(), String> {
        let i = &self.program.interner;
        let guest = self.program.classes.id_of(i.intern("guest")).unwrap();
        let seat = self.program.classes.id_of(i.intern("seat")).unwrap();
        if wm.class_len(guest) != 0 {
            return Err(format!("{} guests left standing", wm.class_len(guest)));
        }
        // (table, pos) -> sex
        let mut seats: FxHashMap<(i64, i64), String> = FxHashMap::default();
        for w in wm.iter_class(seat) {
            let (Value::Int(t), Value::Int(p), Value::Sym(s)) =
                (w.field(0), w.field(1), w.field(2))
            else {
                return Err("malformed seat fact".into());
            };
            if seats.insert((t, p), i.resolve(s).to_string()).is_some() {
                return Err(format!("seat ({t},{p}) filled twice"));
            }
        }
        if seats.len() != self.tables * self.per_table {
            return Err(format!(
                "expected {} filled seats, found {}",
                self.tables * self.per_table,
                seats.len()
            ));
        }
        for t in 0..self.tables as i64 {
            for p in 1..=self.per_table as i64 {
                let here = seats
                    .get(&(t, p))
                    .ok_or_else(|| format!("seat ({t},{p}) empty"))?;
                if p > 1 {
                    let prev = &seats[&(t, p - 1)];
                    if prev == here {
                        return Err(format!(
                            "table {t}: seats {p} and {} share sex {here}",
                            p - 1
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_engine::{EngineOptions, ParallelEngine, SerialEngine, Strategy};

    #[test]
    fn tables_fill_in_parallel() {
        let s = Seating::new(3, 6, 1);
        let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = e.run().unwrap();
        assert!(out.quiescent);
        s.validate(e.wm()).unwrap();
        // 3 tables x 6 seats = 18 firings, but only ~6 cycles (one seat
        // per table per cycle).
        assert_eq!(out.firings, 18);
        assert_eq!(out.cycles, 6);
        assert!(e.stats().redacted_meta > 0);
    }

    #[test]
    fn serial_baseline_also_valid_but_many_cycles() {
        let s = Seating::new(2, 4, 2);
        let mut e = SerialEngine::new(
            s.program(),
            s.initial_wm(),
            Strategy::Mea,
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        assert!(out.quiescent);
        s.validate(e.wm()).unwrap();
        assert_eq!(
            out.cycles, 8,
            "serial: one seat per cycle across all tables"
        );
    }

    #[test]
    fn single_table_is_fully_sequential() {
        let s = Seating::new(1, 8, 3);
        let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = e.run().unwrap();
        assert_eq!(out.cycles, 8, "no intra-table parallelism by design");
        s.validate(e.wm()).unwrap();
    }
}
