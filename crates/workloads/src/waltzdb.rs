//! WaltzDB-style constraint pruning on a grid: the "big drawing" variant.
//!
//! Where [`crate::waltz`] runs on a ring (every junction has degree 2 and
//! one prune rule suffices), this scenario runs on a `w × h` grid whose
//! interior junctions have degree 4, edges degree 3, and corners degree 2
//! — like the multi-junction-type dictionaries of the classic WaltzDB
//! benchmark. One prune rule per junction degree: a rule for degree *d*
//! matches the candidate's *d* `jslot` facts (made unique by ordering the
//! non-triggering slots) plus the unsupported-edge condition, and retracts
//! all of them at once.
//!
//! Slot numbering: 0 = west, 1 = east, 2 = north, 3 = south, but only the
//! slots that exist for the junction's position are asserted; candidate
//! labelings assign one label code per *existing* slot.

use crate::Scenario;
use parulel_core::{FxHashMap, FxHashSet, Program, Value, WorkingMemory};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SOURCE: &str = "
(literalize edge a sa b sb)
(literalize deg junction d)
(literalize jslot junction cand slot lab comp)
(p prune2
  (edge ^a <ja> ^sa <sa> ^b <jb> ^sb <sb>)
  (deg ^junction <ja> ^d 2)
  (jslot ^junction <ja> ^cand <c> ^slot <sa> ^lab <l> ^comp <cmp>)
  (jslot ^junction <ja> ^cand <c> ^slot { <> <sa> <s2> })
  -(jslot ^junction <jb> ^slot <sb> ^lab <cmp>)
 -->
  (remove 3)
  (remove 4))
(p prune3
  (edge ^a <ja> ^sa <sa> ^b <jb> ^sb <sb>)
  (deg ^junction <ja> ^d 3)
  (jslot ^junction <ja> ^cand <c> ^slot <sa> ^lab <l> ^comp <cmp>)
  (jslot ^junction <ja> ^cand <c> ^slot { <> <sa> <s2> })
  (jslot ^junction <ja> ^cand <c> ^slot { <> <sa> > <s2> <s3> })
  -(jslot ^junction <jb> ^slot <sb> ^lab <cmp>)
 -->
  (remove 3)
  (remove 4)
  (remove 5))
(p prune4
  (edge ^a <ja> ^sa <sa> ^b <jb> ^sb <sb>)
  (deg ^junction <ja> ^d 4)
  (jslot ^junction <ja> ^cand <c> ^slot <sa> ^lab <l> ^comp <cmp>)
  (jslot ^junction <ja> ^cand <c> ^slot { <> <sa> <s2> })
  (jslot ^junction <ja> ^cand <c> ^slot { <> <sa> > <s2> <s3> })
  (jslot ^junction <ja> ^cand <c> ^slot { <> <sa> > <s3> <s4> })
  -(jslot ^junction <jb> ^slot <sb> ^lab <cmp>)
 -->
  (remove 3)
  (remove 4)
  (remove 5)
  (remove 6))
";

const CODES: i64 = 4;

fn comp(lab: i64) -> i64 {
    CODES - 1 - lab
}

/// One candidate labeling: `(slot, label)` per existing slot, slot-sorted.
type Cand = Vec<(usize, i64)>;

/// The grid-Waltz scenario.
pub struct WaltzDb {
    name: String,
    program: Program,
    w: usize,
    h: usize,
    /// `cands[j]` = candidates of junction j (j = y*w + x).
    cands: Vec<Vec<Cand>>,
    /// Directed adjacency: (a, sa, b, sb).
    edges: Vec<(usize, usize, usize, usize)>,
    expected: Vec<FxHashSet<usize>>,
}

impl WaltzDb {
    /// A `w × h` grid with up to `d` candidates per junction; junction 0
    /// (a corner) is clamped to one candidate to start a pruning wave.
    pub fn new(w: usize, h: usize, d: usize, seed: u64) -> Self {
        assert!(w >= 2 && h >= 2, "grid must be at least 2x2");
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = w * h;
        // slots: 0=W,1=E,2=N,3=S
        let slots_of = |x: usize, y: usize| -> Vec<usize> {
            let mut s = Vec::with_capacity(4);
            if x > 0 {
                s.push(0);
            }
            if x + 1 < w {
                s.push(1);
            }
            if y > 0 {
                s.push(2);
            }
            if y + 1 < h {
                s.push(3);
            }
            s
        };
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let j = y * w + x;
                if x + 1 < w {
                    // j's east (1) faces (x+1,y)'s west (0)
                    edges.push((j, 1, j + 1, 0));
                    edges.push((j + 1, 0, j, 1));
                }
                if y + 1 < h {
                    // j's south (3) faces (x,y+1)'s north (2)
                    edges.push((j, 3, j + w, 2));
                    edges.push((j + w, 2, j, 3));
                }
            }
        }
        let mut cands: Vec<Vec<Cand>> = Vec::with_capacity(n);
        for y in 0..h {
            for x in 0..w {
                let j = y * w + x;
                let slots = slots_of(x, y);
                let want = if j == 0 { 1 } else { d };
                let mut set: FxHashSet<Vec<i64>> = FxHashSet::default();
                let mut list: Vec<Cand> = Vec::new();
                let mut attempts = 0;
                while list.len() < want && attempts < 128 {
                    attempts += 1;
                    let labs: Vec<i64> = slots.iter().map(|_| rng.gen_range(0..CODES)).collect();
                    if set.insert(labs.clone()) {
                        list.push(slots.iter().copied().zip(labs).collect());
                    }
                }
                cands.push(list);
            }
        }
        let expected = reference_ac(&cands, &edges);
        WaltzDb {
            name: format!("waltzdb({w}x{h},d={d})"),
            program: parulel_lang::compile(SOURCE).expect("waltzdb program compiles"),
            w,
            h,
            cands,
            edges,
            expected,
        }
    }

    /// Total candidates before pruning.
    pub fn initial_candidates(&self) -> usize {
        self.cands.iter().map(|c| c.len()).sum()
    }

    /// Total candidates surviving arc consistency (reference).
    pub fn expected_candidates(&self) -> usize {
        self.expected.iter().map(|s| s.len()).sum()
    }

    /// Grid dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.w, self.h)
    }
}

/// Reference arc consistency on arbitrary topology.
fn reference_ac(
    cands: &[Vec<Cand>],
    edges: &[(usize, usize, usize, usize)],
) -> Vec<FxHashSet<usize>> {
    let mut live: Vec<FxHashSet<usize>> = cands.iter().map(|c| (0..c.len()).collect()).collect();
    // Per-junction slot->label lookup helper.
    let lab_of = |cand: &Cand, slot: usize| -> Option<i64> {
        cand.iter().find(|(s, _)| *s == slot).map(|(_, l)| *l)
    };
    loop {
        let mut changed = false;
        for &(a, sa, b, sb) in edges {
            let dead: Vec<usize> = live[a]
                .iter()
                .copied()
                .filter(|&c| {
                    let Some(l) = lab_of(&cands[a][c], sa) else {
                        return false;
                    };
                    let want = comp(l);
                    !live[b]
                        .iter()
                        .any(|&bc| lab_of(&cands[b][bc], sb) == Some(want))
                })
                .collect();
            for c in dead {
                live[a].remove(&c);
                changed = true;
            }
        }
        if !changed {
            return live;
        }
    }
}

impl Scenario for WaltzDb {
    fn name(&self) -> &str {
        &self.name
    }

    fn source(&self) -> &str {
        SOURCE
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn initial_wm(&self) -> WorkingMemory {
        let mut wm = WorkingMemory::new(&self.program.classes);
        let i = &self.program.interner;
        let edge = self.program.classes.id_of(i.intern("edge")).unwrap();
        let deg = self.program.classes.id_of(i.intern("deg")).unwrap();
        let jslot = self.program.classes.id_of(i.intern("jslot")).unwrap();
        for &(a, sa, b, sb) in &self.edges {
            wm.insert(
                edge,
                vec![
                    Value::Int(a as i64),
                    Value::Int(sa as i64),
                    Value::Int(b as i64),
                    Value::Int(sb as i64),
                ],
            );
        }
        for (j, cands) in self.cands.iter().enumerate() {
            let degree = cands.first().map(|c| c.len()).unwrap_or(0);
            wm.insert(deg, vec![Value::Int(j as i64), Value::Int(degree as i64)]);
            for (c, cand) in cands.iter().enumerate() {
                for &(slot, lab) in cand {
                    wm.insert(
                        jslot,
                        vec![
                            Value::Int(j as i64),
                            Value::Int(c as i64),
                            Value::Int(slot as i64),
                            Value::Int(lab),
                            Value::Int(comp(lab)),
                        ],
                    );
                }
            }
        }
        wm
    }

    fn validate(&self, wm: &WorkingMemory) -> Result<(), String> {
        let i = &self.program.interner;
        let jslot = self.program.classes.id_of(i.intern("jslot")).unwrap();
        let n = self.w * self.h;
        let mut got: Vec<FxHashMap<usize, usize>> = vec![FxHashMap::default(); n];
        for w in wm.iter_class(jslot) {
            let (Value::Int(j), Value::Int(c)) = (w.field(0), w.field(1)) else {
                return Err("malformed jslot".into());
            };
            *got[j as usize].entry(c as usize).or_insert(0) += 1;
        }
        for (j, want) in self.expected.iter().enumerate() {
            let have: FxHashSet<usize> = got[j].keys().copied().collect();
            if &have != want {
                return Err(format!(
                    "junction {j}: surviving candidates {have:?}, expected {want:?}"
                ));
            }
            // No torn candidates: every surviving candidate keeps all its
            // slot facts.
            let degree = self.cands[j].first().map(|c| c.len()).unwrap_or(0);
            for (&c, &count) in &got[j] {
                if count != degree {
                    return Err(format!(
                        "junction {j} candidate {c}: {count}/{degree} slots survive"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_engine::{EngineOptions, ParallelEngine, SerialEngine, Strategy};

    #[test]
    fn grid_pruning_reaches_the_ac_fixpoint() {
        let s = WaltzDb::new(4, 4, 4, 31);
        assert!(s.initial_candidates() > 0);
        let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = e.run().unwrap();
        assert!(out.quiescent);
        s.validate(e.wm()).unwrap();
    }

    #[test]
    fn degree_rules_cover_corners_edges_interiors() {
        // a 3x3 grid has all three degrees: corners 2, edges 3, center 4
        let s = WaltzDb::new(3, 3, 3, 7);
        assert_eq!(s.cands[0].first().unwrap().len(), 2); // corner
        assert_eq!(s.cands[1].first().unwrap().len(), 3); // edge
        assert_eq!(s.cands[4].first().unwrap().len(), 4); // center
        let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        e.run().unwrap();
        s.validate(e.wm()).unwrap();
    }

    #[test]
    fn serial_engine_agrees() {
        let s = WaltzDb::new(3, 3, 3, 5);
        let mut e = SerialEngine::new(
            s.program(),
            s.initial_wm(),
            Strategy::Lex,
            EngineOptions::default(),
        );
        e.run().unwrap();
        s.validate(e.wm()).unwrap();
    }

    #[test]
    fn reference_ac_and_engine_agree_across_seeds() {
        for seed in [1, 2, 3, 4, 5] {
            let s = WaltzDb::new(3, 4, 3, seed);
            let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
            e.run().unwrap();
            s.validate(e.wm())
                .unwrap_or_else(|err| panic!("seed {seed}: {err}"));
        }
    }
}
