//! Waltz-style constraint-label pruning on a ring of junctions.
//!
//! The classic Waltz line-labeling benchmark is arc-consistency filtering:
//! each junction holds a set of candidate labelings; a candidate dies when
//! some adjacent junction has *no* candidate whose facing edge label is
//! compatible. Deletions cascade in waves across the drawing — the
//! remove-heavy, negation-driven end of the suite (contrast with
//! `closure`'s pure adds).
//!
//! The reproduction keeps the constraint structure and drops the drawing
//! bookkeeping: `n` junctions on a ring, each with `d` candidate
//! labelings of its two incident edges over a 4-code label alphabet;
//! label `l` is compatible with facing label `3 - l` (a fixed perfect
//! matching on codes, standing in for the +/-/arrow complement of
//! Huffman–Clowes labels). Each candidate is asserted as two `jslot`
//! facts (one per incident edge) carrying both its own label and the
//! precomputed facing label — which lets a single negated CE express
//! "no supporting candidate across this edge".

use crate::Scenario;
use parulel_core::{FxHashSet, Program, Value, WorkingMemory};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SOURCE: &str = "
(literalize edge a sa b sb)
(literalize jslot junction cand slot lab comp)
(p prune
  (edge ^a <ja> ^sa <sa> ^b <jb> ^sb <sb>)
  (jslot ^junction <ja> ^cand <c> ^slot <sa> ^lab <l> ^comp <cmp>)
  (jslot ^junction <ja> ^cand <c> ^slot { <> <sa> <s2> })
  -(jslot ^junction <jb> ^slot <sb> ^lab <cmp>)
 -->
  (remove 2)
  (remove 3))
";

const CODES: i64 = 4;

fn comp(lab: i64) -> i64 {
    CODES - 1 - lab
}

/// The Waltz-style pruning scenario.
pub struct Waltz {
    name: String,
    program: Program,
    n: usize,
    /// `cands[j]` = candidate labelings (lab towards previous, towards next).
    cands: Vec<Vec<(i64, i64)>>,
    /// Reference AC fixpoint: surviving candidate indices per junction.
    expected: Vec<FxHashSet<usize>>,
}

impl Waltz {
    /// A ring of `n` junctions with up to `d` candidates each; junction 0
    /// is clamped to a single candidate so a pruning wave starts there.
    pub fn new(n: usize, d: usize, seed: u64) -> Self {
        assert!(n >= 3, "ring needs at least 3 junctions");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut cands: Vec<Vec<(i64, i64)>> = Vec::with_capacity(n);
        for j in 0..n {
            let want = if j == 0 { 1 } else { d };
            let mut set = FxHashSet::default();
            let mut list = Vec::new();
            let mut attempts = 0;
            while list.len() < want && attempts < 64 {
                attempts += 1;
                let pair = (rng.gen_range(0..CODES), rng.gen_range(0..CODES));
                if set.insert(pair) {
                    list.push(pair);
                }
            }
            cands.push(list);
        }
        let expected = reference_ac(&cands);
        Waltz {
            name: format!("waltz(n={n},d={d})"),
            program: parulel_lang::compile(SOURCE).expect("waltz program compiles"),
            n,
            cands,
            expected,
        }
    }

    /// Total candidates before pruning.
    pub fn initial_candidates(&self) -> usize {
        self.cands.iter().map(|c| c.len()).sum()
    }

    /// Total candidates surviving arc consistency (reference).
    pub fn expected_candidates(&self) -> usize {
        self.expected.iter().map(|s| s.len()).sum()
    }
}

/// Reference arc-consistency fixpoint on the ring.
fn reference_ac(cands: &[Vec<(i64, i64)>]) -> Vec<FxHashSet<usize>> {
    let n = cands.len();
    let mut live: Vec<FxHashSet<usize>> = cands.iter().map(|c| (0..c.len()).collect()).collect();
    loop {
        let mut changed = false;
        for j in 0..n {
            let prev = (j + n - 1) % n;
            let next = (j + 1) % n;
            let dead: Vec<usize> = live[j]
                .iter()
                .copied()
                .filter(|&c| {
                    let (to_prev, to_next) = cands[j][c];
                    // supported towards prev: prev has a candidate whose
                    // label towards next (slot 1) == comp(to_prev)
                    let prev_ok = live[prev]
                        .iter()
                        .any(|&pc| cands[prev][pc].1 == comp(to_prev));
                    let next_ok = live[next]
                        .iter()
                        .any(|&nc| cands[next][nc].0 == comp(to_next));
                    !(prev_ok && next_ok)
                })
                .collect();
            for c in dead {
                live[j].remove(&c);
                changed = true;
            }
        }
        if !changed {
            return live;
        }
    }
}

impl Scenario for Waltz {
    fn name(&self) -> &str {
        &self.name
    }

    fn source(&self) -> &str {
        SOURCE
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn initial_wm(&self) -> WorkingMemory {
        let mut wm = WorkingMemory::new(&self.program.classes);
        let i = &self.program.interner;
        let edge = self.program.classes.id_of(i.intern("edge")).unwrap();
        let jslot = self.program.classes.id_of(i.intern("jslot")).unwrap();
        let n = self.n as i64;
        for j in 0..n {
            let next = (j + 1) % n;
            // j's slot 1 faces next's slot 0, in both directions.
            wm.insert(
                edge,
                vec![
                    Value::Int(j),
                    Value::Int(1),
                    Value::Int(next),
                    Value::Int(0),
                ],
            );
            wm.insert(
                edge,
                vec![
                    Value::Int(next),
                    Value::Int(0),
                    Value::Int(j),
                    Value::Int(1),
                ],
            );
        }
        for (j, cands) in self.cands.iter().enumerate() {
            for (c, &(to_prev, to_next)) in cands.iter().enumerate() {
                wm.insert(
                    jslot,
                    vec![
                        Value::Int(j as i64),
                        Value::Int(c as i64),
                        Value::Int(0),
                        Value::Int(to_prev),
                        Value::Int(comp(to_prev)),
                    ],
                );
                wm.insert(
                    jslot,
                    vec![
                        Value::Int(j as i64),
                        Value::Int(c as i64),
                        Value::Int(1),
                        Value::Int(to_next),
                        Value::Int(comp(to_next)),
                    ],
                );
            }
        }
        wm
    }

    fn validate(&self, wm: &WorkingMemory) -> Result<(), String> {
        let i = &self.program.interner;
        let jslot = self.program.classes.id_of(i.intern("jslot")).unwrap();
        let mut got: Vec<FxHashSet<usize>> = vec![FxHashSet::default(); self.n];
        let mut slot_count = 0usize;
        for w in wm.iter_class(jslot) {
            let (Value::Int(j), Value::Int(c)) = (w.field(0), w.field(1)) else {
                return Err("malformed jslot".into());
            };
            got[j as usize].insert(c as usize);
            slot_count += 1;
        }
        // Both slots of a surviving candidate must survive together.
        let surviving: usize = got.iter().map(|s| s.len()).sum();
        if slot_count != surviving * 2 {
            return Err(format!(
                "torn candidates: {slot_count} jslots for {surviving} candidates"
            ));
        }
        for (j, want) in self.expected.iter().enumerate() {
            if &got[j] != want {
                return Err(format!(
                    "junction {j}: surviving candidates {:?}, expected {:?}",
                    got[j], want
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_engine::{EngineOptions, ParallelEngine};

    #[test]
    fn pruning_reaches_the_ac_fixpoint() {
        let s = Waltz::new(12, 4, 17);
        assert!(s.initial_candidates() > s.expected_candidates());
        let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = e.run().unwrap();
        assert!(out.quiescent);
        s.validate(e.wm()).unwrap();
    }

    #[test]
    fn fully_consistent_ring_prunes_nothing() {
        // Build candidates so every label is 0 facing 3: all supported.
        let mut s = Waltz::new(3, 1, 1);
        s.cands = vec![vec![(0, 0)]; 3];
        // label 0 faces comp(0)=3 — unsupported; instead use self-dual
        // pair (l, comp(l)) so neighbors agree: j's slot1 lab L must face
        // next's slot0 lab comp(L). Pick lab = 1, facing = 2.
        s.cands = vec![vec![(2, 1)]; 3];
        s.expected = reference_ac(&s.cands);
        assert_eq!(s.expected_candidates(), 3, "reference finds all supported");
        let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = e.run().unwrap();
        assert_eq!(out.firings, 0);
        s.validate(e.wm()).unwrap();
    }

    #[test]
    fn unsatisfiable_ring_empties_every_domain() {
        let mut s = Waltz::new(3, 1, 1);
        // Junction 1 can never face junction 0's demand.
        s.cands = vec![vec![(2, 1)], vec![(0, 0)], vec![(2, 1)]];
        s.expected = reference_ac(&s.cands);
        assert_eq!(s.expected_candidates(), 0);
        let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        e.run().unwrap();
        s.validate(e.wm()).unwrap();
    }

    #[test]
    fn reference_ac_is_sound_on_a_supported_pair() {
        // 3-ring where all face correctly: (to_prev, to_next) = (2,1)
        // everywhere; comp(1) = 2 so slot1 lab 1 faces slot0 lab 2. ✔
        let cands = vec![vec![(2, 1)]; 3];
        let live = reference_ac(&cands);
        assert!(live.iter().all(|s| s.len() == 1));
    }
}
