//! Order matching across many instruments: the OLTP-flavored workload.
//!
//! Buy and sell orders on the same symbol cross when
//! `buy.price >= sell.price`. One buy may cross many sells and vice versa
//! — firing them all would double-fill orders. Four meta-rules keep, per
//! cycle, only *mutual best* pairs: each buy keeps its cheapest crossing
//! sell, each sell its highest-paying buy (ties broken by order id).
//! Within one symbol that is exactly price priority — one trade per cycle,
//! like a real auction — while *across* symbols matching proceeds in
//! parallel, which is the PARULEL transaction-processing story: many
//! independent "transactions" per cycle, conflicts resolved declaratively.
//!
//! The fired set is always non-empty while any cross exists (per symbol,
//! the best-buy/cheapest-sell pair is mutual-best), so every book clears
//! maximally. Remove-heavy (every firing retracts two WMEs) — the
//! workload where TREAT's no-beta-state bet pays off.

use crate::Scenario;
use parulel_core::{FxHashMap, FxHashSet, Program, Value, WorkingMemory};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SOURCE: &str = "
(literalize buy id sym price)
(literalize sell id sym price)
(literalize trade buyer seller sym price)
(p cross
  (buy ^id <b> ^sym <y> ^price <pb>)
  (sell ^id <s> ^sym <y> ^price <ps>)
  (test (>= <pb> <ps>))
 -->
  (remove 1)
  (remove 2)
  (make trade ^buyer <b> ^seller <s> ^sym <y> ^price <ps>))
(mp cheapest-sell-per-buy
  (inst cross (buy ^id <b>) (sell ^price <p1>))
  (inst cross (buy ^id <b>) (sell ^price <p2>))
  (test (> <p1> <p2>))
 -->
  (redact 1))
(mp cheapest-sell-tie
  (inst cross (buy ^id <b>) (sell ^id <s1> ^price <p1>))
  (inst cross (buy ^id <b>) (sell ^id <s2> ^price <p2>))
  (test (= <p1> <p2>))
  (test (> <s1> <s2>))
 -->
  (redact 1))
(mp best-buy-per-sell
  (inst cross (buy ^price <q1>) (sell ^id <s>))
  (inst cross (buy ^price <q2>) (sell ^id <s>))
  (test (< <q1> <q2>))
 -->
  (redact 1))
(mp best-buy-tie
  (inst cross (buy ^id <b1> ^price <q1>) (sell ^id <s>))
  (inst cross (buy ^id <b2> ^price <q2>) (sell ^id <s>))
  (test (= <q1> <q2>))
  (test (> <b1> <b2>))
 -->
  (redact 1))
";

/// The order-matching scenario.
pub struct Market {
    name: String,
    program: Program,
    symbols: usize,
    buys: Vec<(i64, i64, i64)>,  // (id, sym, price)
    sells: Vec<(i64, i64, i64)>, // (id, sym, price)
}

impl Market {
    /// `per_side` buy and `per_side` sell orders spread over `symbols`
    /// instruments, prices uniform in 1..=100.
    pub fn new(per_side: usize, symbols: usize, seed: u64) -> Self {
        let symbols = symbols.max(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gen = |base: i64| -> Vec<(i64, i64, i64)> {
            (0..per_side as i64)
                .map(|i| {
                    (
                        base + i,
                        rng.gen_range(0..symbols as i64),
                        rng.gen_range(1..=100),
                    )
                })
                .collect()
        };
        let buys = gen(0);
        let sells = gen(1_000_000);
        Market {
            name: format!("market(n={per_side}x2,sym={symbols})"),
            program: parulel_lang::compile(SOURCE).expect("market program compiles"),
            symbols,
            buys,
            sells,
        }
    }

    /// Number of instruments (the available parallelism).
    pub fn symbol_count(&self) -> usize {
        self.symbols
    }
}

impl Scenario for Market {
    fn name(&self) -> &str {
        &self.name
    }

    fn source(&self) -> &str {
        SOURCE
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn initial_wm(&self) -> WorkingMemory {
        let mut wm = WorkingMemory::new(&self.program.classes);
        let i = &self.program.interner;
        let buy = self.program.classes.id_of(i.intern("buy")).unwrap();
        let sell = self.program.classes.id_of(i.intern("sell")).unwrap();
        for &(id, sym, price) in &self.buys {
            wm.insert(
                buy,
                vec![Value::Int(id), Value::Int(sym), Value::Int(price)],
            );
        }
        for &(id, sym, price) in &self.sells {
            wm.insert(
                sell,
                vec![Value::Int(id), Value::Int(sym), Value::Int(price)],
            );
        }
        wm
    }

    fn validate(&self, wm: &WorkingMemory) -> Result<(), String> {
        let i = &self.program.interner;
        let buy = self.program.classes.id_of(i.intern("buy")).unwrap();
        let sell = self.program.classes.id_of(i.intern("sell")).unwrap();
        let trade = self.program.classes.id_of(i.intern("trade")).unwrap();
        let buy_info: FxHashMap<i64, (i64, i64)> = self
            .buys
            .iter()
            .map(|&(id, sym, price)| (id, (sym, price)))
            .collect();
        let sell_info: FxHashMap<i64, (i64, i64)> = self
            .sells
            .iter()
            .map(|&(id, sym, price)| (id, (sym, price)))
            .collect();

        let mut traded_buys: FxHashSet<i64> = FxHashSet::default();
        let mut traded_sells: FxHashSet<i64> = FxHashSet::default();
        for w in wm.iter_class(trade) {
            let (Value::Int(b), Value::Int(s), Value::Int(y), Value::Int(p)) =
                (w.field(0), w.field(1), w.field(2), w.field(3))
            else {
                return Err("malformed trade".into());
            };
            if !traded_buys.insert(b) {
                return Err(format!("buy {b} double-filled"));
            }
            if !traded_sells.insert(s) {
                return Err(format!("sell {s} double-filled"));
            }
            let (bs, bp) = *buy_info
                .get(&b)
                .ok_or_else(|| format!("trade references unknown buy {b}"))?;
            let (ss, sp) = *sell_info
                .get(&s)
                .ok_or_else(|| format!("trade references unknown sell {s}"))?;
            if bs != y || ss != y {
                return Err(format!("trade b{b}/s{s} crossed symbols"));
            }
            if bp < sp || p != sp {
                return Err(format!("invalid trade b{b} s{s} @ {p}"));
            }
        }
        for w in wm.iter_class(buy) {
            let Value::Int(b) = w.field(0) else {
                return Err("malformed buy".into());
            };
            if traded_buys.contains(&b) {
                return Err(format!("buy {b} both traded and resting"));
            }
        }
        // Per symbol, the book must be cleared: no resting cross.
        let mut max_buy: FxHashMap<i64, i64> = FxHashMap::default();
        let mut min_sell: FxHashMap<i64, i64> = FxHashMap::default();
        for w in wm.iter_class(buy) {
            if let (Value::Int(sym), Value::Int(p)) = (w.field(1), w.field(2)) {
                let e = max_buy.entry(sym).or_insert(i64::MIN);
                *e = (*e).max(p);
            }
        }
        for w in wm.iter_class(sell) {
            if let (Value::Int(sym), Value::Int(p)) = (w.field(1), w.field(2)) {
                let e = min_sell.entry(sym).or_insert(i64::MAX);
                *e = (*e).min(p);
            }
        }
        for (sym, &mb) in &max_buy {
            if let Some(&ms) = min_sell.get(sym) {
                if mb >= ms {
                    return Err(format!(
                        "symbol {sym} not cleared: resting buy {mb} crosses sell {ms}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_engine::{EngineOptions, GuardMode, ParallelEngine};

    #[test]
    fn book_clears_without_double_fills() {
        let s = Market::new(20, 4, 8);
        let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = e.run().unwrap();
        assert!(out.quiescent);
        s.validate(e.wm()).unwrap();
        assert!(out.firings > 0);
    }

    #[test]
    fn symbols_trade_in_parallel() {
        let s = Market::new(24, 8, 2);
        let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = e.run().unwrap();
        s.validate(e.wm()).unwrap();
        assert!(
            out.firings > out.cycles,
            "independent symbols should trade in the same cycle: {out:?}"
        );
    }

    #[test]
    fn single_symbol_is_price_priority_sequential() {
        let s = Market::new(10, 1, 3);
        let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = e.run().unwrap();
        s.validate(e.wm()).unwrap();
        // mutual-best within one symbol = exactly one trade per cycle
        assert_eq!(out.firings, out.cycles);
    }

    #[test]
    fn serializable_guard_agrees_with_meta_rules() {
        // The meta-set already makes the fired set non-interfering, so the
        // strictest guard redacts nothing.
        let s = Market::new(16, 4, 4);
        let mut e = parulel_engine::Engine::with_policy(
            s.program(),
            s.initial_wm(),
            parulel_engine::FiringPolicy::FireAll {
                meta: true,
                guard: GuardMode::Serializable,
            },
            EngineOptions::default(),
        );
        e.run().unwrap();
        s.validate(e.wm()).unwrap();
        assert_eq!(e.stats().redacted_guard, 0);
    }

    #[test]
    fn empty_side_is_quiescent_immediately() {
        let s = Market::new(0, 1, 1);
        let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = e.run().unwrap();
        assert!(out.quiescent);
        assert_eq!(out.cycles, 0);
        s.validate(e.wm()).unwrap();
    }
}
