//! Connected components by minimum-label propagation.
//!
//! Every node starts labeled with its own id; each cycle, every node
//! adopts the smallest label among its neighbors (if smaller than its
//! own). Many neighbors may propose a label for the same node in the same
//! cycle — a *modify-modify* conflict that PARULEL resolves with
//! meta-rules alone: keep the proposal with the smallest label, breaking
//! ties by smallest proposing neighbor. Exactly one update per node per
//! cycle survives, so the engine can run guard-off.
//!
//! Convergence: components collapse to their minimum node id in
//! O(diameter) cycles.

use crate::Scenario;
use parulel_core::{FxHashMap, Program, Value, WorkingMemory};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SOURCE: &str = "
(literalize node id label)
(literalize arc from to)
(p prop
  (arc ^from <a> ^to <b>)
  (node ^id <a> ^label <la>)
  (node ^id <b> ^label <lb>)
  (test (< <la> <lb>))
 -->
  (modify 3 ^label <la>))
(mp keep-smaller-label
  (inst prop _ (node ^label <l1>) (node ^id <n>))
  (inst prop _ (node ^label <l2>) (node ^id <n>))
  (test (> <l1> <l2>))
 -->
  (redact 1))
(mp break-label-ties-by-source
  (inst prop (arc ^from <s1>) (node ^label <l1>) (node ^id <n>))
  (inst prop (arc ^from <s2>) (node ^label <l2>) (node ^id <n>))
  (test (= <l1> <l2>))
  (test (> <s1> <s2>))
 -->
  (redact 1))
";

/// The label-propagation scenario.
pub struct LabelProp {
    name: String,
    program: Program,
    nodes: usize,
    arcs: Vec<(i64, i64)>, // undirected input; asserted in both directions
    expected: FxHashMap<i64, i64>,
}

impl LabelProp {
    /// A random undirected graph with `nodes` vertices and `edges` edges
    /// (multi-component on purpose: edges are sparse).
    pub fn new(nodes: usize, edges: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut arcs = Vec::new();
        let mut seen = parulel_core::FxHashSet::default();
        while arcs.len() < edges {
            let a = rng.gen_range(0..nodes) as i64;
            let b = rng.gen_range(0..nodes) as i64;
            if a != b && seen.insert((a.min(b), a.max(b))) {
                arcs.push((a, b));
            }
        }
        let expected = reference_components(nodes, &arcs);
        LabelProp {
            name: format!("labelprop(n={nodes},e={edges})"),
            program: parulel_lang::compile(SOURCE).expect("labelprop program compiles"),
            nodes,
            arcs,
            expected,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }
}

/// Reference: union-find by repeated relaxation.
fn reference_components(nodes: usize, arcs: &[(i64, i64)]) -> FxHashMap<i64, i64> {
    let mut label: Vec<i64> = (0..nodes as i64).collect();
    loop {
        let mut changed = false;
        for &(a, b) in arcs {
            let (la, lb) = (label[a as usize], label[b as usize]);
            let min = la.min(lb);
            if la != min {
                label[a as usize] = min;
                changed = true;
            }
            if lb != min {
                label[b as usize] = min;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (0..nodes as i64).map(|i| (i, label[i as usize])).collect()
}

impl Scenario for LabelProp {
    fn name(&self) -> &str {
        &self.name
    }

    fn source(&self) -> &str {
        SOURCE
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn initial_wm(&self) -> WorkingMemory {
        let mut wm = WorkingMemory::new(&self.program.classes);
        let node = self
            .program
            .classes
            .id_of(self.program.interner.intern("node"))
            .unwrap();
        let arc = self
            .program
            .classes
            .id_of(self.program.interner.intern("arc"))
            .unwrap();
        for i in 0..self.nodes as i64 {
            wm.insert(node, vec![Value::Int(i), Value::Int(i)]);
        }
        for &(a, b) in &self.arcs {
            wm.insert(arc, vec![Value::Int(a), Value::Int(b)]);
            wm.insert(arc, vec![Value::Int(b), Value::Int(a)]);
        }
        wm
    }

    fn validate(&self, wm: &WorkingMemory) -> Result<(), String> {
        let node = self
            .program
            .classes
            .id_of(self.program.interner.intern("node"))
            .unwrap();
        let mut got: FxHashMap<i64, i64> = FxHashMap::default();
        for w in wm.iter_class(node) {
            let (Value::Int(id), Value::Int(label)) = (w.field(0), w.field(1)) else {
                return Err("non-integer node fact".into());
            };
            if got.insert(id, label).is_some() {
                return Err(format!("node {id} duplicated — interference leaked"));
            }
        }
        if got.len() != self.nodes {
            return Err(format!(
                "expected {} nodes, found {}",
                self.nodes,
                got.len()
            ));
        }
        for (id, want) in &self.expected {
            match got.get(id) {
                Some(l) if l == want => {}
                other => {
                    return Err(format!(
                        "node {id}: label {other:?}, expected {want} (component min)"
                    ))
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_engine::{EngineOptions, GuardMode, ParallelEngine};

    #[test]
    fn meta_rules_alone_keep_updates_conflict_free() {
        let s = LabelProp::new(20, 24, 3);
        let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = e.run().unwrap();
        assert!(out.quiescent);
        s.validate(e.wm()).unwrap();
        assert!(e.stats().redacted_meta > 0, "expected real redaction work");
    }

    #[test]
    fn guard_reports_zero_with_correct_metas() {
        // With the meta-rules in place the WriteWrite guard finds nothing.
        let s = LabelProp::new(16, 20, 9);
        let mut e = parulel_engine::Engine::with_policy(
            s.program(),
            s.initial_wm(),
            parulel_engine::FiringPolicy::FireAll {
                meta: true,
                guard: GuardMode::WriteWrite,
            },
            EngineOptions::default(),
        );
        e.run().unwrap();
        s.validate(e.wm()).unwrap();
        assert_eq!(e.stats().redacted_guard, 0);
    }

    #[test]
    fn star_graph_converges_in_one_hop() {
        // Node 0 in the middle: every leaf adopts 0 in cycle 1.
        let mut s = LabelProp::new(2, 1, 1);
        s.nodes = 6;
        s.arcs = (1..6).map(|i| (0i64, i as i64)).collect();
        s.expected = reference_components(6, &s.arcs);
        let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = e.run().unwrap();
        assert_eq!(out.cycles, 1);
        assert_eq!(out.firings, 5);
        s.validate(e.wm()).unwrap();
    }

    #[test]
    fn reference_components_handles_isolated_nodes() {
        let m = reference_components(4, &[(0, 1)]);
        assert_eq!(m[&0], 0);
        assert_eq!(m[&1], 0);
        assert_eq!(m[&2], 2);
        assert_eq!(m[&3], 3);
    }
}
