//! # parulel-vm
//!
//! A compact stack bytecode for PARULEL rules, plus the register-free VM
//! that evaluates it and a content-addressed rule store.
//!
//! Tree-walking the IR ([`parulel_core::ir`]) re-dispatches on enum tags
//! for every field test and RHS expression of every candidate match. This
//! crate compiles each rule once into three flat code objects — per-CE
//! LHS tests, anchored rule tests, and the RHS action sequence — that a
//! small stack machine executes with a single opcode dispatch loop.
//!
//! Three properties matter more than raw speed:
//!
//! * **Bit-exact equivalence.** Every opcode bottoms out in the *same*
//!   core primitives the tree-walker uses ([`PredOp::apply`],
//!   [`Value::matches_eq`], [`parulel_core::ir::ccc_hash`],
//!   [`BinOp::apply`]), so compiled and interpreted evaluation cannot
//!   diverge — the differential suite in the workspace root proves it
//!   across every matcher and firing policy.
//! * **Content addressing.** Each [`RuleCode`] carries an FNV-1a hash of
//!   its canonicalized encoding (symbols and class names resolved to
//!   strings, the rule *name excluded*), so two compilations of the same
//!   rule body — across program edits, rule reorderings, or variable
//!   renamings — produce the same hash. [`ProgramCode`] keys rules both
//!   by name (the NameMap) and by hash (the CodeMap); live reload uses
//!   the hashes to decide which rules actually changed.
//! * **Hot swap.** Because unchanged rules keep their hash, a reloading
//!   engine can keep their matcher state (shared alpha nodes, RETE
//!   betas) untouched and rebuild only what changed.
//!
//! [`PredOp::apply`]: parulel_core::PredOp::apply
//! [`Value::matches_eq`]: parulel_core::Value::matches_eq
//! [`BinOp::apply`]: parulel_core::BinOp::apply

#![warn(missing_docs)]

pub mod code;
pub mod compile;
pub mod exec;

pub use code::{disassemble, disassemble_program, Code, Op, ProgramCode, RuleCode};
pub use compile::{
    compile_field_tests, compile_program, compile_program_reusing, compile_rule, FieldTestCode,
};
pub use exec::{Evaluator, FireOutput, RhsError};

/// Which evaluation path the engine and matchers run: the tree-walking
/// IR interpreter or the compiled stack bytecode.
///
/// The differential suite proves the two paths equivalent, so `Bytecode`
/// is the default; `Tree` remains selectable (CLI `--eval tree`, server
/// `"eval":"tree"`) as the oracle and for debugging.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EvalMode {
    /// Walk the IR enums directly (the original path).
    Tree,
    /// Execute compiled stack bytecode (the default).
    #[default]
    Bytecode,
}

impl EvalMode {
    /// Parses `"tree"` / `"bytecode"`.
    pub fn parse(s: &str) -> Option<EvalMode> {
        match s {
            "tree" => Some(EvalMode::Tree),
            "bytecode" => Some(EvalMode::Bytecode),
            _ => None,
        }
    }

    /// The canonical name (`"tree"` / `"bytecode"`).
    pub fn name(self) -> &'static str {
        match self {
            EvalMode::Tree => "tree",
            EvalMode::Bytecode => "bytecode",
        }
    }
}
