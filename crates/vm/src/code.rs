//! Bytecode data model: opcodes, code objects, the content-addressed
//! store, canonical encoding + FNV-1a hashing, and the disassembler.

use parulel_core::{BinOp, ClassId, FxHashMap, Interner, Polarity, PredOp, Program, Value};
use std::fmt::Write as _;
use std::sync::Arc;

/// One stack-machine instruction.
///
/// The machine is register-free: expression ops push onto a value stack,
/// test ops pop operands and abort the current code object with `false`
/// on failure, RHS ops pop evaluated arguments and emit delta entries.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Op {
    /// Push constant-table entry `consts[idx]`.
    Const(u16),
    /// Push `env[var]`.
    Var(u16),
    /// Push `wme.fields[slot]` (LHS code only).
    Field(u16),
    /// Pop `b`, then `a`; push `a ⊕ b` ([`BinOp::apply`] — an arithmetic
    /// error fails a test code object, or aborts an RHS with the error).
    Bin(BinOp),
    /// Pop `b`, then `a`; fail unless [`PredOp::apply`]`(a, b)`.
    Test(PredOp),
    /// Pop `v`; fail unless one of `consts[start..start+len]`
    /// [`matches_eq`](Value::matches_eq) `v`.
    OneOf {
        /// First constant-table index of the alternatives.
        start: u16,
        /// Number of alternatives.
        len: u16,
    },
    /// Pop `v`; fail unless `ccc_hash(v) % divisor == residue`
    /// (the copy-and-constrain partition test).
    HashMod {
        /// Hash divisor (number of copies).
        divisor: u32,
        /// This copy's residue class.
        residue: u32,
    },
    /// Pop `v`; `env[var] = v` (a `Bind` field test, or an RHS `bind`).
    Store(u16),
    /// Pop `arity` values (oldest first); assert a new WME of `class`.
    Make {
        /// Class of the asserted WME.
        class: ClassId,
        /// Field count (the class's arity).
        arity: u16,
    },
    /// Retract the WME matched at CE position `ce`.
    Remove {
        /// CE index into the instantiation's matched WMEs.
        ce: u8,
    },
    /// Pop `len` values; retract CE `ce`'s WME and assert a copy with
    /// slots `slot_table[start..start+len]` replaced (in order).
    Modify {
        /// CE index into the instantiation's matched WMEs.
        ce: u8,
        /// First slot-table index.
        start: u16,
        /// Number of replaced slots (and popped values).
        len: u16,
    },
    /// Pop `n` values (oldest first); render one `write` log line.
    Write {
        /// Argument count.
        n: u16,
    },
    /// If log collection is off, jump to op index `target` — the `write`
    /// argument expressions in between are never evaluated, so their
    /// errors cannot fire when logging is disabled (exactly the
    /// tree-walker's behavior).
    SkipUnlessLog {
        /// Op index of the first instruction after the guarded `Write`.
        target: u16,
    },
    /// Set the halt flag.
    Halt,
}

/// A flat instruction sequence.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Code {
    /// The instructions.
    pub ops: Vec<Op>,
}

/// Compiled LHS code for one condition element.
#[derive(Clone, PartialEq, Debug)]
pub struct CeCode {
    /// The CE's class (checked before any code runs).
    pub class: ClassId,
    /// Positive or negated.
    pub polarity: Polarity,
    /// Constant-only (alpha) tests, in declared order.
    pub alpha: Code,
    /// Binds and join (beta) tests, in declared order.
    pub beta: Code,
    /// Every field test in declared order — the single-pass `matches`
    /// used by enumeration-based matchers.
    pub all: Code,
}

/// A compiled rule test (`(test …)`), anchored like its IR counterpart.
#[derive(Clone, PartialEq, Debug)]
pub struct TestCode {
    /// The CE position after which the test can run.
    pub anchor: usize,
    /// Expression + comparison code.
    pub code: Code,
}

/// Everything one rule compiles to, plus its content hash.
#[derive(Clone, PartialEq, Debug)]
pub struct RuleCode {
    /// Rule name (excluded from the content hash).
    pub name: String,
    /// FNV-1a 64 hash of the canonical encoding (see module docs).
    pub hash: u64,
    /// Per-CE LHS code.
    pub ces: Vec<CeCode>,
    /// Anchored rule tests.
    pub tests: Vec<TestCode>,
    /// The whole RHS (binds, then actions) as one code object.
    pub rhs: Code,
    /// Shared constant table for every code object of this rule.
    pub consts: Vec<Value>,
    /// Slot table for `Modify` ops.
    pub slots: Vec<u16>,
    /// Environment size.
    pub num_vars: u16,
}

impl RuleCode {
    /// Rule tests anchored at `anchor`, in declared order.
    pub fn tests_at(&self, anchor: usize) -> impl Iterator<Item = &TestCode> {
        self.tests.iter().filter(move |t| t.anchor == anchor)
    }
}

/// The content-addressed store for one compiled program: rules indexed
/// densely by [`RuleId`](parulel_core::RuleId) for the hot path, plus
/// the NameMap (name → hash) and CodeMap (hash → code) views.
#[derive(Clone, Debug, Default)]
pub struct ProgramCode {
    rules: Vec<Arc<RuleCode>>,
    by_name: FxHashMap<String, u64>,
    by_hash: FxHashMap<u64, Arc<RuleCode>>,
}

impl ProgramCode {
    /// Builds the store from per-rule code objects (in rule-id order).
    pub fn from_rules(rules: Vec<Arc<RuleCode>>) -> ProgramCode {
        let mut by_name = FxHashMap::default();
        let mut by_hash = FxHashMap::default();
        for rc in &rules {
            by_name.insert(rc.name.clone(), rc.hash);
            // Two rules with identical bodies share a hash; the CodeMap
            // keeps the first (the code objects differ only in name).
            by_hash.entry(rc.hash).or_insert_with(|| rc.clone());
        }
        ProgramCode {
            rules,
            by_name,
            by_hash,
        }
    }

    /// The rule at dense index `id` (the hot-path lookup).
    #[inline]
    pub fn rule(&self, id: u32) -> &Arc<RuleCode> {
        &self.rules[id as usize]
    }

    /// All rules, in rule-id order.
    pub fn rules(&self) -> &[Arc<RuleCode>] {
        &self.rules
    }

    /// NameMap: the content hash of the rule named `name`.
    pub fn hash_of(&self, name: &str) -> Option<u64> {
        self.by_name.get(name).copied()
    }

    /// CodeMap: the code object with content hash `hash`.
    pub fn by_hash(&self, hash: u64) -> Option<&Arc<RuleCode>> {
        self.by_hash.get(&hash)
    }

    /// Sorted `(name, hash)` pairs — the deterministic summary snapshots
    /// and reload responses carry.
    pub fn name_map(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .by_name
            .iter()
            .map(|(n, h)| (n.clone(), *h))
            .collect();
        v.sort();
        v
    }
}

// --- canonical encoding + hash ---

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Streaming FNV-1a 64.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }
    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Appends the canonical bytes of one value: symbols resolved to their
/// strings (interner ids depend on declaration order and must not leak
/// into the hash), floats as IEEE bits.
fn canon_value(out: &mut Vec<u8>, v: Value, interner: &Interner) {
    match v {
        Value::Sym(s) => {
            out.push(0);
            let name = interner.resolve(s);
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
    }
}

fn canon_class(out: &mut Vec<u8>, class: ClassId, program: &Program) {
    let name = program
        .interner
        .resolve(program.classes.decl(class).name);
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
}

/// Appends the canonical bytes of one op. Constants are inlined (so the
/// table layout never matters) with symbols resolved; classes resolve to
/// their names; variable and slot indices are structural (the compiler
/// assigns variable ids by first occurrence, making the encoding stable
/// under α-renaming).
fn canon_op(out: &mut Vec<u8>, op: Op, consts: &[Value], slots: &[u16], program: &Program) {
    match op {
        Op::Const(i) => {
            out.push(0);
            canon_value(out, consts[i as usize], &program.interner);
        }
        Op::Var(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Op::Field(s) => {
            out.push(2);
            out.extend_from_slice(&s.to_le_bytes());
        }
        Op::Bin(b) => {
            out.push(3);
            out.push(b as u8);
        }
        Op::Test(p) => {
            out.push(4);
            out.push(p as u8);
        }
        Op::OneOf { start, len } => {
            out.push(5);
            out.extend_from_slice(&len.to_le_bytes());
            for i in start..start + len {
                canon_value(out, consts[i as usize], &program.interner);
            }
        }
        Op::HashMod { divisor, residue } => {
            out.push(6);
            out.extend_from_slice(&divisor.to_le_bytes());
            out.extend_from_slice(&residue.to_le_bytes());
        }
        Op::Store(v) => {
            out.push(7);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Op::Make { class, arity } => {
            out.push(8);
            canon_class(out, class, program);
            out.extend_from_slice(&arity.to_le_bytes());
        }
        Op::Remove { ce } => {
            out.push(9);
            out.push(ce);
        }
        Op::Modify { ce, start, len } => {
            out.push(10);
            out.push(ce);
            out.extend_from_slice(&len.to_le_bytes());
            for i in start..start + len {
                out.extend_from_slice(&slots[i as usize].to_le_bytes());
            }
        }
        Op::Write { n } => {
            out.push(11);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Op::SkipUnlessLog { .. } => {
            // The jump target is a layout artifact (it always points just
            // past the matching Write); the tag alone is canonical.
            out.push(12);
        }
        Op::Halt => out.push(13),
    }
}

fn canon_code(out: &mut Vec<u8>, code: &Code, consts: &[Value], slots: &[u16], program: &Program) {
    out.extend_from_slice(&(code.ops.len() as u32).to_le_bytes());
    for &op in &code.ops {
        canon_op(out, op, consts, slots, program);
    }
}

/// The canonical byte encoding of a rule's code — what the content hash
/// covers. Deliberately excludes the rule name (renames must not change
/// the hash) and the alpha/beta split of CE code (both are derived
/// subsequences of `all`).
pub(crate) fn canonical_bytes(rc: &RuleCode, program: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(&rc.num_vars.to_le_bytes());
    out.extend_from_slice(&(rc.ces.len() as u32).to_le_bytes());
    for ce in &rc.ces {
        canon_class(&mut out, ce.class, program);
        out.push(match ce.polarity {
            Polarity::Positive => 0,
            Polarity::Negative => 1,
        });
        canon_code(&mut out, &ce.all, &rc.consts, &rc.slots, program);
    }
    out.extend_from_slice(&(rc.tests.len() as u32).to_le_bytes());
    for t in &rc.tests {
        out.extend_from_slice(&(t.anchor as u32).to_le_bytes());
        canon_code(&mut out, &t.code, &rc.consts, &rc.slots, program);
    }
    canon_code(&mut out, &rc.rhs, &rc.consts, &rc.slots, program);
    out
}

/// FNV-1a 64 over [`canonical_bytes`].
pub(crate) fn content_hash(rc: &RuleCode, program: &Program) -> u64 {
    let mut h = Fnv::new();
    h.update(&canonical_bytes(rc, program));
    h.finish()
}

// --- disassembler ---

fn dis_value(v: Value, interner: &Interner) -> String {
    v.display(interner)
}

fn dis_op(op: Op, rc: &RuleCode, program: &Program) -> String {
    let interner = &program.interner;
    match op {
        Op::Const(i) => format!("const {}", dis_value(rc.consts[i as usize], interner)),
        Op::Var(v) => format!("var {v}"),
        Op::Field(s) => format!("field {s}"),
        Op::Bin(b) => format!("bin {b}"),
        Op::Test(p) => format!("test {p:?}").to_lowercase(),
        Op::OneOf { start, len } => {
            let alts: Vec<String> = (start..start + len)
                .map(|i| dis_value(rc.consts[i as usize], interner))
                .collect();
            format!("oneof [{}]", alts.join(" "))
        }
        Op::HashMod { divisor, residue } => format!("hashmod {divisor} {residue}"),
        Op::Store(v) => format!("store {v}"),
        Op::Make { class, arity } => format!(
            "make {} /{arity}",
            interner.resolve(program.classes.decl(class).name)
        ),
        Op::Remove { ce } => format!("remove ce{ce}"),
        Op::Modify { ce, start, len } => {
            let ss: Vec<String> = (start..start + len)
                .map(|i| rc.slots[i as usize].to_string())
                .collect();
            format!("modify ce{ce} slots [{}]", ss.join(" "))
        }
        Op::Write { n } => format!("write /{n}"),
        Op::SkipUnlessLog { target } => format!("skip-unless-log -> {target}"),
        Op::Halt => "halt".to_string(),
    }
}

fn dis_code(out: &mut String, label: &str, code: &Code, rc: &RuleCode, program: &Program) {
    let _ = writeln!(out, "  {label}:");
    for (i, &op) in code.ops.iter().enumerate() {
        let _ = writeln!(out, "    {i:3}  {}", dis_op(op, rc, program));
    }
}

/// Renders one compiled rule as deterministic text: the header carries
/// the name and content hash; sections list the per-CE code, anchored
/// tests, and RHS.
pub fn disassemble(rc: &RuleCode, program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "rule {} hash={:016x} vars={}", rc.name, rc.hash, rc.num_vars);
    for (i, ce) in rc.ces.iter().enumerate() {
        let class = program
            .interner
            .resolve(program.classes.decl(ce.class).name);
        let sign = match ce.polarity {
            Polarity::Positive => "+",
            Polarity::Negative => "-",
        };
        let _ = writeln!(out, "  ce {i} {sign}{class}");
        dis_code(&mut out, "all", &ce.all, rc, program);
    }
    for t in &rc.tests {
        let _ = writeln!(out, "  test @ce{}", t.anchor);
        dis_code(&mut out, "code", &t.code, rc, program);
    }
    dis_code(&mut out, "rhs", &rc.rhs, rc, program);
    out
}

/// [`disassemble`] every rule of a store, in rule-id order.
pub fn disassemble_program(code: &ProgramCode, program: &Program) -> String {
    code.rules()
        .iter()
        .map(|rc| disassemble(rc, program))
        .collect::<Vec<_>>()
        .join("\n")
}
