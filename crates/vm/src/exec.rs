//! The VM: a register-free stack interpreter for compiled code, plus the
//! [`Evaluator`] facade the matchers and engine call through.
//!
//! The interpreter keeps one thread-local scratch stack (taken and
//! returned around each code object), so the hot path never allocates.
//! Every opcode bottoms out in the same core primitives the tree-walker
//! uses — [`PredOp::apply`](parulel_core::PredOp::apply),
//! [`Value::matches_eq`], [`ccc_hash`], [`BinOp::apply`] — which is what
//! makes bit-exact equivalence provable rather than hoped-for.

use crate::code::{Op, ProgramCode, RuleCode};
use crate::compile::compile_program;
use crate::EvalMode;
use parulel_core::expr::EvalError;
use parulel_core::ir::ccc_hash;
use parulel_core::{Delta, Instantiation, Program, RuleId, Value, Wme};
use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

std::thread_local! {
    /// Per-thread scratch value stack, reused across evaluations. A
    /// `Cell<Vec<_>>` (take/put) instead of `RefCell` so a reentrant
    /// evaluation — one never happens today, but a panic hook or trace
    /// callback could — gets a fresh empty stack instead of a borrow
    /// panic.
    static STACK: Cell<Vec<Value>> = const { Cell::new(Vec::new()) };
}

fn with_stack<R>(f: impl FnOnce(&mut Vec<Value>) -> R) -> R {
    STACK.with(|cell| {
        let mut stack = cell.take();
        stack.clear();
        let r = f(&mut stack);
        cell.set(stack);
        r
    })
}

/// Runs LHS/test code: `true` iff every test op passes. An arithmetic
/// error in a `Bin` makes the code object false, mirroring the
/// tree-walker's rule-test semantics (a test that divides by zero simply
/// does not match). `wme` is required iff the code contains `Field` ops;
/// `env` is read by `Var` and written by `Store` (binds).
pub(crate) fn run_tests(ops: &[Op], consts: &[Value], wme: Option<&Wme>, env: &mut [Value]) -> bool {
    with_stack(|stack| {
        for &op in ops {
            match op {
                Op::Const(i) => stack.push(consts[i as usize]),
                Op::Var(v) => stack.push(env[v as usize]),
                Op::Field(s) => {
                    let w = wme.expect("Field op in code run without a WME");
                    stack.push(w.field(s as usize));
                }
                Op::Bin(b) => {
                    let r = stack.pop().expect("stack underflow");
                    let l = stack.pop().expect("stack underflow");
                    match b.apply(l, r) {
                        Ok(v) => stack.push(v),
                        Err(_) => return false,
                    }
                }
                Op::Test(p) => {
                    let r = stack.pop().expect("stack underflow");
                    let l = stack.pop().expect("stack underflow");
                    if !p.apply(l, r) {
                        return false;
                    }
                }
                Op::OneOf { start, len } => {
                    let v = stack.pop().expect("stack underflow");
                    let alts = &consts[start as usize..(start + len) as usize];
                    if !alts.iter().any(|&c| v.matches_eq(c)) {
                        return false;
                    }
                }
                Op::HashMod { divisor, residue } => {
                    let v = stack.pop().expect("stack underflow");
                    if ccc_hash(v) % u64::from(divisor) != u64::from(residue) {
                        return false;
                    }
                }
                Op::Store(v) => {
                    let x = stack.pop().expect("stack underflow");
                    env[v as usize] = x;
                }
                Op::Make { .. }
                | Op::Remove { .. }
                | Op::Modify { .. }
                | Op::Write { .. }
                | Op::SkipUnlessLog { .. }
                | Op::Halt => unreachable!("RHS op in LHS/test code"),
            }
        }
        true
    })
}

/// Runs anchored rule-test code (`Const`/`Var`/`Bin`/`Test` only — no
/// field reads, no binds), so the environment can stay shared. Arithmetic
/// errors make the test false, matching
/// [`TestExpr::check`](parulel_core::TestExpr::check).
pub(crate) fn run_expr_tests(ops: &[Op], consts: &[Value], env: &[Value]) -> bool {
    with_stack(|stack| {
        for &op in ops {
            match op {
                Op::Const(i) => stack.push(consts[i as usize]),
                Op::Var(v) => stack.push(env[v as usize]),
                Op::Bin(b) => {
                    let r = stack.pop().expect("stack underflow");
                    let l = stack.pop().expect("stack underflow");
                    match b.apply(l, r) {
                        Ok(v) => stack.push(v),
                        Err(_) => return false,
                    }
                }
                Op::Test(p) => {
                    let r = stack.pop().expect("stack underflow");
                    let l = stack.pop().expect("stack underflow");
                    if !p.apply(l, r) {
                        return false;
                    }
                }
                _ => unreachable!("non-expression op in anchored test code"),
            }
        }
        true
    })
}

/// A structured RHS failure from the VM.
///
/// The engine maps this to its `RhsEval` error: `in_write` failures are
/// attributed to the pseudo-rule `<write>` (exactly like the
/// tree-walker's `render_write`), everything else to the firing rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RhsError {
    /// The failing expression was a `write` argument.
    pub in_write: bool,
    /// The underlying arithmetic error.
    pub error: EvalError,
}

/// The isolated effect of one bytecode RHS execution — the VM's analogue
/// of the engine's `FireResult`.
#[derive(Clone, Debug, Default)]
pub struct FireOutput {
    /// The delta fragment (removes reference matched WME ids; adds carry
    /// evaluated field tuples).
    pub delta: Delta,
    /// Rendered `write` output lines.
    pub log: Vec<String>,
    /// The RHS executed a `halt`.
    pub halt: bool,
}

/// The evaluation facade: one object holding the program, its compiled
/// [`ProgramCode`], and the active [`EvalMode`].
///
/// Matchers and the engine route every LHS test and RHS execution through
/// this, so flipping the mode swaps the whole evaluation path in one
/// place. The store is always compiled (even in `Tree` mode) — content
/// hashes must exist for reload diffing regardless of which path runs.
#[derive(Clone)]
pub struct Evaluator {
    mode: EvalMode,
    program: Arc<Program>,
    code: Arc<ProgramCode>,
}

impl fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Evaluator")
            .field("mode", &self.mode)
            .field("rules", &self.code.rules().len())
            .finish()
    }
}

impl Evaluator {
    /// Compiles `program` and wraps it with the given mode.
    pub fn new(program: Arc<Program>, mode: EvalMode) -> Evaluator {
        let code = Arc::new(compile_program(&program));
        Evaluator {
            mode,
            program,
            code,
        }
    }

    /// Wraps an already-compiled store (the reload path, which reuses
    /// unchanged rules' code objects).
    pub fn with_code(program: Arc<Program>, mode: EvalMode, code: Arc<ProgramCode>) -> Evaluator {
        Evaluator {
            mode,
            program,
            code,
        }
    }

    /// The active evaluation mode.
    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// The compiled content-addressed store.
    pub fn code(&self) -> &Arc<ProgramCode> {
        &self.code
    }

    /// The program being evaluated.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    #[inline]
    fn rc(&self, rule: RuleId) -> &RuleCode {
        self.code.rule(rule.0)
    }

    /// Class check + constant (alpha) tests of CE `ce` of `rule`.
    #[inline]
    pub fn passes_alpha(&self, rule: RuleId, ce: usize, wme: &Wme) -> bool {
        match self.mode {
            EvalMode::Tree => self.program.rule(rule).ces[ce].passes_alpha(wme),
            EvalMode::Bytecode => {
                let rc = self.rc(rule);
                let cc = &rc.ces[ce];
                wme.class == cc.class && run_tests(&cc.alpha.ops, &rc.consts, Some(wme), &mut [])
            }
        }
    }

    /// Binds and join (beta) tests of CE `ce` of `rule`, under `env`.
    /// Like the tree path, a failing run may leave partial bindings —
    /// callers pass a scratch copy when that matters.
    #[inline]
    pub fn run_beta(&self, rule: RuleId, ce: usize, wme: &Wme, env: &mut [Value]) -> bool {
        match self.mode {
            EvalMode::Tree => self.program.rule(rule).ces[ce].run_beta(wme, env),
            EvalMode::Bytecode => {
                let rc = self.rc(rule);
                run_tests(&rc.ces[ce].beta.ops, &rc.consts, Some(wme), env)
            }
        }
    }

    /// Full CE check (class + alpha + beta) — the single-pass `matches`
    /// used by enumeration-based matchers.
    #[inline]
    pub fn matches(&self, rule: RuleId, ce: usize, wme: &Wme, env: &mut [Value]) -> bool {
        match self.mode {
            EvalMode::Tree => self.program.rule(rule).ces[ce].matches(wme, env),
            EvalMode::Bytecode => {
                let rc = self.rc(rule);
                let cc = &rc.ces[ce];
                wme.class == cc.class && run_tests(&cc.all.ops, &rc.consts, Some(wme), env)
            }
        }
    }

    /// Every rule test anchored at CE position `anchor`, under `env`.
    /// Evaluation errors make a test false, exactly like
    /// [`TestExpr::check`](parulel_core::TestExpr::check); the env is
    /// never written (anchored tests cannot bind).
    #[inline]
    pub fn tests_pass_at(&self, rule: RuleId, anchor: usize, env: &[Value]) -> bool {
        match self.mode {
            EvalMode::Tree => self
                .program
                .rule(rule)
                .tests
                .iter()
                .filter(|t| t.anchor == anchor)
                .all(|t| t.test.check(env)),
            EvalMode::Bytecode => {
                let rc = self.rc(rule);
                rc.tests_at(anchor)
                    .all(|t| run_expr_tests(&t.code.ops, &rc.consts, env))
            }
        }
    }

    /// Executes the compiled RHS of `inst`'s rule against its matched
    /// snapshot. Semantics replicate the tree-walker action for action:
    /// `bind`s run first, `make` fields evaluate left to right, `modify`
    /// starts from the matched WME's fields, `write` renders only when
    /// `collect_log` (the guard jump skips argument evaluation entirely —
    /// so write-argument errors cannot fire with logging off).
    pub fn fire(&self, inst: &Instantiation, collect_log: bool) -> Result<FireOutput, RhsError> {
        let rc = self.rc(inst.rule);
        let mut env: Vec<Value> = inst.env.to_vec();
        let mut out = FireOutput::default();
        let interner = &self.program.interner;
        with_stack(|stack| {
            let ops = &rc.rhs.ops;
            let mut pc = 0usize;
            let mut in_write = false;
            while pc < ops.len() {
                match ops[pc] {
                    Op::Const(i) => stack.push(rc.consts[i as usize]),
                    Op::Var(v) => stack.push(env[v as usize]),
                    Op::Bin(b) => {
                        let r = stack.pop().expect("stack underflow");
                        let l = stack.pop().expect("stack underflow");
                        match b.apply(l, r) {
                            Ok(v) => stack.push(v),
                            Err(error) => return Err(RhsError { in_write, error }),
                        }
                    }
                    Op::Store(v) => {
                        let x = stack.pop().expect("stack underflow");
                        env[v as usize] = x;
                    }
                    Op::Make { class, arity } => {
                        let vals = stack.split_off(stack.len() - arity as usize);
                        out.delta.adds.push((class, Arc::from(vals)));
                    }
                    Op::Remove { ce } => {
                        out.delta.removes.push(inst.wmes[ce as usize].id);
                    }
                    Op::Modify { ce, start, len } => {
                        let vals = stack.split_off(stack.len() - len as usize);
                        let wme = &inst.wmes[ce as usize];
                        out.delta.removes.push(wme.id);
                        let mut fields: Vec<Value> = wme.fields.to_vec();
                        for (i, v) in vals.into_iter().enumerate() {
                            fields[rc.slots[start as usize + i] as usize] = v;
                        }
                        out.delta.adds.push((wme.class, Arc::from(fields)));
                    }
                    Op::Write { n } => {
                        let vals = stack.split_off(stack.len() - n as usize);
                        let parts: Vec<String> =
                            vals.into_iter().map(|v| v.display(interner)).collect();
                        out.log.push(parts.join(" "));
                        in_write = false;
                    }
                    Op::SkipUnlessLog { target } => {
                        if collect_log {
                            in_write = true;
                        } else {
                            pc = target as usize;
                            continue;
                        }
                    }
                    Op::Halt => out.halt = true,
                    Op::Field(_) | Op::Test(_) | Op::OneOf { .. } | Op::HashMod { .. } => {
                        unreachable!("LHS op in RHS code")
                    }
                }
                pc += 1;
            }
            Ok(())
        })?;
        Ok(out)
    }
}
