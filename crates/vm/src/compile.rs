//! The compiler: parsed IR → stack bytecode.
//!
//! Compilation is a straight-line walk over each rule: field tests
//! become `Field`/`Const`/`Test`-style triples, rule tests and RHS
//! expressions flatten post-order (left operand, right operand,
//! operator), and actions append their argument code followed by one
//! emitting op. The result is deterministic — identical IR always
//! compiles to identical code, which is what makes the content hash a
//! usable identity.

use crate::code::{content_hash, CeCode, Code, Op, ProgramCode, RuleCode, TestCode};
use parulel_core::{
    Action, ConditionElement, Expr, FieldCheck, FieldTest, Program, Rule, TestExpr, Value, Wme,
};
use std::sync::Arc;

/// Per-rule compilation state: the shared constant and slot tables.
struct Tables {
    consts: Vec<Value>,
    slots: Vec<u16>,
}

impl Tables {
    fn konst(&mut self, v: Value) -> u16 {
        // Linear scan: constant tables are tiny and compilation runs once
        // per program. Floats compare bitwise via Value's total Eq.
        if let Some(i) = self.consts.iter().position(|&c| c == v) {
            return i as u16;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u16
    }

    /// OneOf alternatives must be contiguous; they get a fresh run even
    /// if individual values already exist elsewhere in the table.
    fn konst_run(&mut self, vs: &[Value]) -> u16 {
        let start = self.consts.len() as u16;
        self.consts.extend_from_slice(vs);
        start
    }

    fn slot_run(&mut self, ss: impl Iterator<Item = u16>) -> (u16, u16) {
        let start = self.slots.len() as u16;
        self.slots.extend(ss);
        (start, self.slots.len() as u16 - start)
    }
}

fn emit_expr(code: &mut Code, e: &Expr, t: &mut Tables) {
    match e {
        Expr::Const(v) => {
            let i = t.konst(*v);
            code.ops.push(Op::Const(i));
        }
        Expr::Var(v) => code.ops.push(Op::Var(v.index() as u16)),
        Expr::Bin(op, l, r) => {
            emit_expr(code, l, t);
            emit_expr(code, r, t);
            code.ops.push(Op::Bin(*op));
        }
    }
}

fn emit_field_test(code: &mut Code, ft: &FieldTest, t: &mut Tables) {
    code.ops.push(Op::Field(ft.slot));
    match &ft.check {
        FieldCheck::Const(op, v) => {
            let i = t.konst(*v);
            code.ops.push(Op::Const(i));
            code.ops.push(Op::Test(*op));
        }
        FieldCheck::OneOf(vs) => {
            let start = t.konst_run(vs);
            code.ops.push(Op::OneOf {
                start,
                len: vs.len() as u16,
            });
        }
        FieldCheck::Bind(var) => code.ops.push(Op::Store(var.index() as u16)),
        FieldCheck::Var(op, var) => {
            code.ops.push(Op::Var(var.index() as u16));
            code.ops.push(Op::Test(*op));
        }
        FieldCheck::HashMod { divisor, residue } => code.ops.push(Op::HashMod {
            divisor: *divisor,
            residue: *residue,
        }),
    }
}

fn compile_ce(ce: &ConditionElement, t: &mut Tables) -> CeCode {
    let mut alpha = Code::default();
    let mut beta = Code::default();
    for ft in &ce.tests {
        if ft.check.is_alpha() {
            emit_field_test(&mut alpha, ft, t);
        } else {
            emit_field_test(&mut beta, ft, t);
        }
    }
    // The single-pass `matches` mirrors the tree-walker exactly: alpha
    // tests first, then binds/joins (`passes_alpha && run_beta`).
    let mut all = alpha.clone();
    all.ops.extend_from_slice(&beta.ops);
    CeCode {
        class: ce.class,
        polarity: ce.polarity,
        alpha,
        beta,
        all,
    }
}

fn compile_test(te: &TestExpr, t: &mut Tables) -> Code {
    let mut code = Code::default();
    emit_expr(&mut code, &te.lhs, t);
    emit_expr(&mut code, &te.rhs, t);
    code.ops.push(Op::Test(te.op));
    code
}

fn compile_rhs(rule: &Rule, t: &mut Tables) -> Code {
    let mut code = Code::default();
    for (var, expr) in &rule.binds {
        emit_expr(&mut code, expr, t);
        code.ops.push(Op::Store(var.index() as u16));
    }
    for action in &rule.actions {
        match action {
            Action::Make { class, fields } => {
                for e in fields {
                    emit_expr(&mut code, e, t);
                }
                code.ops.push(Op::Make {
                    class: *class,
                    arity: fields.len() as u16,
                });
            }
            Action::Remove { ce } => code.ops.push(Op::Remove { ce: *ce }),
            Action::Modify { ce, sets } => {
                for (_, e) in sets {
                    emit_expr(&mut code, e, t);
                }
                let (start, len) = t.slot_run(sets.iter().map(|(s, _)| *s));
                code.ops.push(Op::Modify {
                    ce: *ce,
                    start,
                    len,
                });
            }
            Action::Write(exprs) => {
                // Placeholder target patched once the Write lands: when
                // logging is off the VM jumps straight past it, so write
                // expressions (and their errors) never evaluate.
                let guard = code.ops.len();
                code.ops.push(Op::SkipUnlessLog { target: 0 });
                for e in exprs {
                    emit_expr(&mut code, e, t);
                }
                code.ops.push(Op::Write {
                    n: exprs.len() as u16,
                });
                let target = code.ops.len() as u16;
                code.ops[guard] = Op::SkipUnlessLog { target };
            }
            Action::Halt => code.ops.push(Op::Halt),
        }
    }
    code
}

/// Compiles one rule and stamps its content hash.
pub fn compile_rule(rule: &Rule, program: &Program) -> RuleCode {
    let mut t = Tables {
        consts: Vec::new(),
        slots: Vec::new(),
    };
    let ces: Vec<CeCode> = rule.ces.iter().map(|ce| compile_ce(ce, &mut t)).collect();
    let tests: Vec<TestCode> = rule
        .tests
        .iter()
        .map(|rt| TestCode {
            anchor: rt.anchor,
            code: compile_test(&rt.test, &mut t),
        })
        .collect();
    let rhs = compile_rhs(rule, &mut t);
    let mut rc = RuleCode {
        name: program.rule_name(rule.id),
        hash: 0,
        ces,
        tests,
        rhs,
        consts: t.consts,
        slots: t.slots,
        num_vars: rule.num_vars,
    };
    rc.hash = content_hash(&rc, program);
    rc
}

/// Compiles every rule of `program` into a fresh content-addressed store.
pub fn compile_program(program: &Program) -> ProgramCode {
    compile_program_reusing(program, None)
}

/// Like [`compile_program`], but rules whose `(name, hash)` already
/// exist in `old` reuse the previous [`RuleCode`] allocation — the
/// reload path's cheap way to prove (and exploit) that a rule did not
/// change.
pub fn compile_program_reusing(program: &Program, old: Option<&ProgramCode>) -> ProgramCode {
    let rules = program
        .rules()
        .iter()
        .map(|r| {
            let rc = compile_rule(r, program);
            if let Some(prev) = old.and_then(|o| {
                o.rules()
                    .iter()
                    .find(|p| p.name == rc.name && p.hash == rc.hash)
            }) {
                return prev.clone();
            }
            Arc::new(rc)
        })
        .collect();
    ProgramCode::from_rules(rules)
}

/// Standalone compiled code for a bare field-test list — the shape the
/// shared alpha network's nodes carry (one node per distinct (class,
/// tests) key, no rule identity).
#[derive(Clone, PartialEq, Debug)]
pub struct FieldTestCode {
    ops: Vec<Op>,
    consts: Vec<Value>,
}

/// Compiles a field-test list (alpha-node constant tests) into a
/// self-contained code object.
pub fn compile_field_tests(tests: &[FieldTest]) -> FieldTestCode {
    let mut t = Tables {
        consts: Vec::new(),
        slots: Vec::new(),
    };
    let mut code = Code::default();
    for ft in tests {
        emit_field_test(&mut code, ft, &mut t);
    }
    FieldTestCode {
        ops: code.ops,
        consts: t.consts,
    }
}

impl FieldTestCode {
    /// Runs the compiled tests against `wme`. Alpha tests never touch an
    /// environment, so none is needed; a `Bind` compiled in by a caller
    /// that passed beta tests would be rejected at execution time in
    /// debug builds.
    #[inline]
    pub fn passes(&self, wme: &Wme) -> bool {
        crate::exec::run_tests(&self.ops, &self.consts, Some(wme), &mut [])
    }
}
