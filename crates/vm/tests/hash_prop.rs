//! Content-hash stability properties. The rule store is addressed by an
//! FNV-1a hash of each rule's *canonicalized* bytecode, so live reload
//! can recognize unchanged rules across recompiles. That only works if
//! the hash is a function of rule *meaning*: it must survive a
//! print→reparse round trip, rule reordering, α-renaming of variables,
//! and renaming the rule itself.
//!
//! Random rules are generated as abstract specs and *rendered* to
//! source text by a pure function of (spec, name tables) — so rendering
//! the same spec with a different variable pool yields an exactly
//! α-equivalent program, not an approximately similar one.

use parulel_lang::printer::print_program;
use parulel_vm::{compile_program, disassemble_program};
use proptest::prelude::*;
use std::fmt::Write as _;

#[derive(Clone, Debug)]
enum SrcTest {
    Const(i64),
    Var(u16), // fresh bind or reference, decided by the renderer
}

#[derive(Clone, Debug)]
enum SrcAction {
    Make(u16, i64),
    Modify(u16),
    Remove,
    Write(u16),
}

#[derive(Clone, Debug)]
struct SrcRule {
    ces: Vec<(u8, bool, Vec<Option<SrcTest>>)>, // (class, negated, per-slot test)
    cross_test: bool,
    actions: Vec<SrcAction>,
}

const ARITY: usize = 2;

/// Renders specs to source. `rule_name(i)` and `var_name(i)` are the
/// only naming choices; everything else is a pure function of the
/// specs, so two renders differ *exactly* by renaming.
fn render(
    rules: &[SrcRule],
    rule_name: impl Fn(usize) -> String,
    var_name: impl Fn(usize) -> String,
) -> String {
    let mut src = String::new();
    for c in 0..2 {
        writeln!(src, "(literalize c{c} f0 f1)").unwrap();
    }
    for (ri, rule) in rules.iter().enumerate() {
        let mut bound = 0usize; // vars exported by positive CEs so far
        write!(src, "(p {}", rule_name(ri)).unwrap();
        for (ci, (class, negated, tests)) in rule.ces.iter().enumerate() {
            let negated = *negated && ci > 0;
            write!(src, " {}(c{}", if negated { "-" } else { "" }, class % 2).unwrap();
            for (slot, test) in tests.iter().enumerate().take(ARITY) {
                match test {
                    None => {}
                    Some(SrcTest::Const(v)) => write!(src, " ^f{slot} {}", v % 4).unwrap(),
                    Some(SrcTest::Var(i)) => {
                        // In a positive CE, index 0 (or an empty pool)
                        // means "bind fresh"; otherwise reference an
                        // exported var. Negated CEs never bind.
                        if !negated && (bound == 0 || *i % 3 == 0) {
                            write!(src, " ^f{slot} <{}>", var_name(bound)).unwrap();
                            bound += 1;
                        } else if bound == 0 {
                            write!(src, " ^f{slot} 1").unwrap();
                        } else {
                            write!(src, " ^f{slot} <{}>", var_name(*i as usize % bound)).unwrap();
                        }
                    }
                }
            }
            write!(src, ")").unwrap();
        }
        if rule.cross_test && bound >= 2 {
            write!(src, " (test (<= <{}> <{}>))", var_name(0), var_name(1)).unwrap();
        }
        let vref = |i: u16| {
            if bound == 0 { "2".to_string() } else { format!("<{}>", var_name(i as usize % bound)) }
        };
        write!(src, " -->").unwrap();
        for action in &rule.actions {
            match action {
                SrcAction::Make(v, k) => {
                    write!(src, " (make c1 ^f0 {} ^f1 {})", vref(*v), k % 4).unwrap()
                }
                SrcAction::Modify(v) => {
                    write!(src, " (modify 1 ^f0 (+ {} 1))", vref(*v)).unwrap()
                }
                SrcAction::Remove => write!(src, " (remove 1)").unwrap(),
                SrcAction::Write(v) => write!(src, " (write {} fired)", vref(*v)).unwrap(),
            }
        }
        if rule.actions.is_empty() {
            write!(src, " (write noop)").unwrap();
        }
        writeln!(src, ")").unwrap();
    }
    src
}

/// Each rule's content hash, in program order (positional, so renamed
/// programs can be compared rule-for-rule).
fn hashes(src: &str) -> Vec<u64> {
    let program = parulel_lang::compile(src)
        .unwrap_or_else(|e| panic!("generated source must compile: {e}\n{src}"));
    compile_program(&program).rules().iter().map(|r| r.hash).collect()
}

fn src_test() -> impl Strategy<Value = Option<SrcTest>> {
    prop_oneof![
        1 => Just(None),
        2 => (0i64..4).prop_map(|v| Some(SrcTest::Const(v))),
        3 => any::<u16>().prop_map(|i| Some(SrcTest::Var(i))),
    ]
}

fn src_rule() -> impl Strategy<Value = SrcRule> {
    (
        prop::collection::vec(
            (any::<u8>(), any::<bool>(), prop::collection::vec(src_test(), ARITY)),
            1..4,
        ),
        any::<bool>(),
        prop::collection::vec(
            prop_oneof![
                (any::<u16>(), 0i64..4).prop_map(|(v, k)| SrcAction::Make(v, k)),
                any::<u16>().prop_map(SrcAction::Modify),
                Just(SrcAction::Remove),
                any::<u16>().prop_map(SrcAction::Write),
            ],
            0..3,
        ),
    )
        .prop_map(|(ces, cross_test, actions)| SrcRule { ces, cross_test, actions })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Pretty-printing a parsed program and recompiling the output must
    /// reproduce every rule's content hash *and* its disassembly — the
    /// printed form is a faithful carrier of rule identity (this is what
    /// lets a client echo a program back through `reload` verbatim).
    #[test]
    fn print_reparse_recompile_preserves_hashes(rules in prop::collection::vec(src_rule(), 1..4)) {
        let src = render(&rules, |i| format!("r{i}"), |i| format!("v{i}"));
        let program = parulel_lang::compile(&src).unwrap();
        let code = compile_program(&program);

        let printed = print_program(&parulel_lang::parse(&src).unwrap());
        let reprogram = parulel_lang::compile(&printed)
            .unwrap_or_else(|e| panic!("printed source must compile: {e}\n{printed}"));
        let recode = compile_program(&reprogram);

        prop_assert_eq!(code.name_map(), recode.name_map(), "--- src ---\n{}", src);
        prop_assert_eq!(
            disassemble_program(&code, &program),
            disassemble_program(&recode, &reprogram)
        );
    }

    /// Reordering rule declarations changes nothing about any single
    /// rule: `hash_of(name)` is order-independent. (This is what makes
    /// an identity `reload` of a shuffled file report all-unchanged.)
    #[test]
    fn rule_order_does_not_affect_content_hashes(rules in prop::collection::vec(src_rule(), 2..5)) {
        let forward = render(&rules, |i| format!("r{i}"), |i| format!("v{i}"));
        let reversed_rules: Vec<SrcRule> = rules.iter().rev().cloned().collect();
        let n = rules.len();
        // Keep each rule's *name* attached to its body as it moves.
        let reversed = render(&reversed_rules, |i| format!("r{}", n - 1 - i), |i| format!("v{i}"));

        let a = parulel_lang::compile(&forward).unwrap();
        let b = parulel_lang::compile(&reversed).unwrap();
        let (ca, cb) = (compile_program(&a), compile_program(&b));
        for i in 0..n {
            let name = format!("r{i}");
            prop_assert_eq!(
                ca.hash_of(&name), cb.hash_of(&name),
                "rule {} hash moved with its position\n--- forward ---\n{}", name, forward
            );
        }
    }

    /// Renaming every variable (consistently) and every rule leaves the
    /// content hashes untouched, rule-for-rule: the hash keys on
    /// structure, and names — human labels — are excluded.
    #[test]
    fn alpha_renaming_leaves_content_hashes_stable(rules in prop::collection::vec(src_rule(), 1..4)) {
        let original = render(&rules, |i| format!("r{i}"), |i| format!("v{i}"));
        let renamed = render(&rules, |i| format!("totally-different-{i}"), |i| format!("x{i}"));
        prop_assert_eq!(
            hashes(&original),
            hashes(&renamed),
            "--- original ---\n{}\n--- renamed ---\n{}", original, renamed
        );
    }

    /// And the contrapositive guard: changing a rule's *body* (a
    /// constant in a field test) must change its hash — the store can't
    /// treat distinct rules as unchanged across a reload.
    #[test]
    fn changing_a_constant_changes_the_hash(v in 0i64..4) {
        let rule = |k: i64| vec![SrcRule {
            ces: vec![(0, false, vec![Some(SrcTest::Const(k)), Some(SrcTest::Var(0))])],
            cross_test: false,
            actions: vec![SrcAction::Write(0)],
        }];
        let a = hashes(&render(&rule(v), |i| format!("r{i}"), |i| format!("v{i}")));
        let b = hashes(&render(&rule((v + 1) % 4), |i| format!("r{i}"), |i| format!("v{i}")));
        prop_assert_ne!(a, b);
    }
}
