//! Unit-level checks for the bytecode compiler and VM: tree/bytecode
//! equivalence at the Evaluator surface, content-hash invariance under
//! rename and α-renaming, write-guard semantics, and disassembly
//! determinism. The full-engine differential suite lives at the
//! workspace root; these tests pin the crate-local contracts.

use parulel_core::expr::EvalError;
use parulel_core::{Instantiation, RuleId, Value, Wme, WmeId, WorkingMemory};
use parulel_lang::compile;
use parulel_vm::{compile_program, disassemble_program, EvalMode, Evaluator};
use std::sync::Arc;

const SRC: &str = "
(literalize item kind price qty)
(literalize order item count)
(literalize out v)
(p restock
 (item ^kind { <k> << widget gadget >> } ^price <p> ^qty 0)
 (order ^item <k> ^count <n>)
 (test (> <n> 2))
 -->
 (bind <total> (* <p> <n>))
 (make out ^v <total>)
 (modify 1 ^qty <n>)
 (write restocked <k> x <n>)
 (remove 2))
(p cheap
 (item ^price < 10 ^qty <q>)
 -->
 (make out ^v (+ <q> 1)))
";

fn program_and_wm() -> (Arc<parulel_core::Program>, WorkingMemory, Vec<Wme>) {
    let p = compile(SRC).unwrap();
    let mut wm = WorkingMemory::new(&p.classes);
    let item = p.classes.id_of(p.interner.intern("item")).unwrap();
    let order = p.classes.id_of(p.interner.intern("order")).unwrap();
    let widget = Value::Sym(p.interner.intern("widget"));
    let gizmo = Value::Sym(p.interner.intern("gizmo"));
    wm.insert(item, vec![widget, Value::Int(7), Value::Int(0)]);
    wm.insert(item, vec![gizmo, Value::Int(3), Value::Int(5)]);
    wm.insert(order, vec![widget, Value::Int(4)]);
    let wmes: Vec<Wme> = {
        let mut v: Vec<Wme> = wm.iter().cloned().collect();
        v.sort_by_key(|w| w.id);
        v
    };
    (Arc::new(p), wm, wmes)
}

/// Both evaluator modes agree with each other (and with the raw IR) on
/// every (rule, ce, wme) combination, for alpha, beta, and full matches.
#[test]
fn evaluator_modes_agree_on_lhs() {
    let (p, _wm, wmes) = program_and_wm();
    let tree = Evaluator::new(p.clone(), EvalMode::Tree);
    let byte = Evaluator::new(p.clone(), EvalMode::Bytecode);
    for rule in p.rules() {
        for (ce_idx, ce) in rule.ces.iter().enumerate() {
            for w in &wmes {
                let t_alpha = tree.passes_alpha(rule.id, ce_idx, w);
                let b_alpha = byte.passes_alpha(rule.id, ce_idx, w);
                assert_eq!(t_alpha, b_alpha, "alpha rule={:?} ce={ce_idx}", rule.id);
                assert_eq!(t_alpha, ce.passes_alpha(w), "alpha vs IR");

                let mut env_t = vec![Value::Int(0); rule.num_vars as usize];
                let mut env_b = env_t.clone();
                let t = tree.matches(rule.id, ce_idx, w, &mut env_t);
                let b = byte.matches(rule.id, ce_idx, w, &mut env_b);
                assert_eq!(t, b, "matches rule={:?} ce={ce_idx}", rule.id);
                if t {
                    assert_eq!(env_t, env_b, "bindings diverged");
                }
            }
        }
    }
}

/// Beta runs agree under a pre-seeded environment (join-style usage).
#[test]
fn evaluator_modes_agree_on_beta_and_tests() {
    let (p, _wm, wmes) = program_and_wm();
    let tree = Evaluator::new(p.clone(), EvalMode::Tree);
    let byte = Evaluator::new(p.clone(), EvalMode::Bytecode);
    let restock = p.rules()[0].id;
    let num_vars = p.rules()[0].num_vars as usize;
    // Bind <k> from the first item CE, then compare the order CE's beta
    // and the anchored (test (> <n> 2)).
    for seed in &wmes {
        let mut env_t = vec![Value::Int(0); num_vars];
        if !tree.matches(restock, 0, seed, &mut env_t) {
            continue;
        }
        let mut env_b = vec![Value::Int(0); num_vars];
        assert!(byte.matches(restock, 0, seed, &mut env_b));
        assert_eq!(env_t, env_b);
        for w in &wmes {
            let mut t_env = env_t.clone();
            let mut b_env = env_b.clone();
            let t = w.class == p.rules()[0].ces[1].class
                && tree.passes_alpha(restock, 1, w)
                && tree.run_beta(restock, 1, w, &mut t_env);
            let b = w.class == p.rules()[0].ces[1].class
                && byte.passes_alpha(restock, 1, w)
                && byte.run_beta(restock, 1, w, &mut b_env);
            assert_eq!(t, b, "beta diverged on wme {:?}", w.id);
            if t {
                assert_eq!(t_env, b_env);
                assert_eq!(
                    tree.tests_pass_at(restock, 1, &t_env),
                    byte.tests_pass_at(restock, 1, &b_env),
                    "anchored test diverged"
                );
            }
        }
    }
}

/// The VM RHS produces exactly the tree-walker's delta, log, and halt for
/// a handcrafted instantiation (make + modify + write + remove + bind).
#[test]
fn fire_matches_tree_semantics() {
    let (p, _wm, wmes) = program_and_wm();
    let byte = Evaluator::new(p.clone(), EvalMode::Bytecode);
    let restock = &p.rules()[0];
    // Matched WMEs: item widget (id 1) and order widget (id 3).
    let item = wmes[0].clone();
    let order = wmes[2].clone();
    let mut env = vec![Value::Int(0); restock.num_vars as usize];
    let tree = Evaluator::new(p.clone(), EvalMode::Tree);
    assert!(tree.matches(restock.id, 0, &item, &mut env));
    assert!(tree.run_beta(restock.id, 1, &order, &mut env));
    let inst = Instantiation::new(restock.id, vec![item.clone(), order.clone()], env);

    let out = byte.fire(&inst, true).unwrap();
    assert!(!out.halt);
    assert_eq!(out.log, vec!["restocked widget x 4"]);
    // make out ^v 28, modify item → qty 4, remove order
    assert_eq!(out.delta.adds.len(), 2);
    assert_eq!(out.delta.adds[0].1.as_ref(), &[Value::Int(28)]);
    assert_eq!(
        out.delta.adds[1].1.as_ref(),
        &[item.field(0), Value::Int(7), Value::Int(4)]
    );
    assert_eq!(out.delta.removes, vec![item.id, order.id]);

    // Logging off: same delta, no log lines.
    let quiet = byte.fire(&inst, false).unwrap();
    assert_eq!(quiet.delta.adds, out.delta.adds);
    assert_eq!(quiet.delta.removes, out.delta.removes);
    assert!(quiet.log.is_empty());
}

/// Write-argument errors surface only when logging is on (the guard jump
/// skips evaluation entirely), and are flagged `in_write` for the
/// engine's `<write>` attribution.
#[test]
fn write_errors_gated_by_collect_log() {
    let p = Arc::new(
        compile(
            "(literalize n v)
             (p r (n ^v <x>) --> (write (// <x> 0)) (make n ^v <x>))",
        )
        .unwrap(),
    );
    let byte = Evaluator::new(p.clone(), EvalMode::Bytecode);
    let n = p.classes.id_of(p.interner.intern("n")).unwrap();
    let w = Wme::new(WmeId(1), n, vec![Value::Int(5)]);
    let inst = Instantiation::new(RuleId(0), vec![w], vec![Value::Int(5)]);

    let err = byte.fire(&inst, true).unwrap_err();
    assert!(err.in_write);
    assert_eq!(err.error, EvalError::DivideByZero);

    let ok = byte.fire(&inst, false).unwrap();
    assert_eq!(ok.delta.adds.len(), 1);
}

/// Non-write RHS errors are not flagged `in_write`.
#[test]
fn bind_errors_are_not_in_write() {
    let p = Arc::new(
        compile(
            "(literalize n v)
             (p r (n ^v <x>) --> (bind <y> (// <x> 0)) (make n ^v <y>))",
        )
        .unwrap(),
    );
    let byte = Evaluator::new(p.clone(), EvalMode::Bytecode);
    let n = p.classes.id_of(p.interner.intern("n")).unwrap();
    let w = Wme::new(WmeId(1), n, vec![Value::Int(5)]);
    let inst = Instantiation::new(RuleId(0), vec![w], vec![Value::Int(5), Value::Int(0)]);
    let err = byte.fire(&inst, true).unwrap_err();
    assert!(!err.in_write);
    assert_eq!(err.error, EvalError::DivideByZero);
}

/// Renaming a rule changes the NameMap but not the content hash;
/// renaming its variables (α-renaming) changes nothing at all.
#[test]
fn content_hash_ignores_rule_and_variable_names() {
    let base = "(literalize n a b)
                (p r (n ^a <x> ^b <y>) (test (> <x> <y>)) --> (make n ^a <y> ^b <x>))";
    let renamed_rule = base.replace("(p r ", "(p totally-different ");
    let renamed_vars = base.replace("<x>", "<alpha>").replace("<y>", "<beta>");

    let h = |src: &str| {
        let p = compile(src).unwrap();
        let code = compile_program(&p);
        code.rules()[0].hash
    };
    let base_hash = h(base);
    assert_eq!(base_hash, h(&renamed_rule), "rule rename changed the hash");
    assert_eq!(base_hash, h(&renamed_vars), "α-renaming changed the hash");

    // A semantic change does move the hash.
    let changed = base.replace("(> <x> <y>)", "(>= <x> <y>)");
    assert_ne!(base_hash, h(&changed), "semantic change kept the hash");
}

/// Identical rule bodies under different names share one CodeMap entry;
/// the NameMap still resolves both names.
#[test]
fn codemap_dedupes_identical_bodies() {
    let p = compile(
        "(literalize n v)
         (p first (n ^v <x>) --> (remove 1))
         (p second (n ^v <x>) --> (remove 1))",
    )
    .unwrap();
    let code = compile_program(&p);
    let h1 = code.hash_of("first").unwrap();
    let h2 = code.hash_of("second").unwrap();
    assert_eq!(h1, h2);
    assert_eq!(code.by_hash(h1).unwrap().name, "first");
    assert_eq!(code.name_map().len(), 2);
}

/// Compiling the same program twice disassembles identically — the
/// encoding (and therefore the hash) is deterministic.
#[test]
fn disassembly_is_deterministic() {
    let (p, _wm, _wmes) = program_and_wm();
    let a = disassemble_program(&compile_program(&p), &p);
    let b = disassemble_program(&compile_program(&p), &p);
    assert_eq!(a, b);
    assert!(a.contains("hash="), "header should carry the content hash");
    assert!(a.contains("skip-unless-log"), "write guard missing:\n{a}");
}
