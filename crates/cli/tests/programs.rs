//! Integration tests: the shipped `.pll` demo programs run correctly
//! through the real CLI path.

use parulel_cli::run_cli;
use std::path::PathBuf;

fn program_path(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // repo root
    p.push("examples/programs");
    p.push(name);
    p.to_str().unwrap().to_string()
}

fn cli(words: &[&str]) -> (i32, String) {
    let argv: Vec<String> = words.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    let code = run_cli(&argv, &mut buf);
    (code, String::from_utf8(buf).unwrap())
}

#[test]
fn counter_counts_to_ten_and_halts() {
    let (code, out) = cli(&["run", &program_path("counter.pll")]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("reached ten"), "{out}");
    assert!(out.contains("(halt)"), "{out}");
}

#[test]
fn sort_produces_ascending_cells() {
    let (code, out) = cli(&["run", &program_path("sort.pll"), "--dump-wm", "--stats"]);
    assert_eq!(code, 0, "{out}");
    // extract (cell ^i k ^v v) rows and check v is the sorted input
    let mut cells: Vec<(i64, i64)> = out
        .lines()
        .filter_map(|l| {
            let l = l.trim();
            let rest = l.strip_prefix("(cell ^i ")?;
            let (i, rest) = rest.split_once(" ^v ")?;
            let v = rest.strip_suffix(')')?;
            Some((i.parse().ok()?, v.parse().ok()?))
        })
        .collect();
    cells.sort();
    let values: Vec<i64> = cells.iter().map(|&(_, v)| v).collect();
    assert_eq!(values, vec![0, 1, 2, 3, 6, 7, 8, 9], "{out}");
    // parallel swaps: strictly fewer cycles than total swaps performed
    assert!(out.contains("firings/cycle"), "{out}");
}

#[test]
fn sieve_reports_exactly_the_primes_up_to_30() {
    let (code, out) = cli(&["run", &program_path("sieve.pll")]);
    assert_eq!(code, 0, "{out}");
    let mut primes: Vec<i64> = out
        .lines()
        .filter_map(|l| l.strip_prefix("prime ")?.parse().ok())
        .collect();
    primes.sort();
    assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29], "{out}");
    // and the whole sieve takes 3 cycles: mark+advance, collect, quiesce
    assert!(
        out.contains("in 2 cycles") || out.contains("in 3 cycles"),
        "{out}"
    );
}

#[test]
fn all_shipped_programs_pass_check_and_fmt() {
    for name in ["counter.pll", "sort.pll", "sieve.pll"] {
        let path = program_path(name);
        let (code, out) = cli(&["check", &path]);
        assert_eq!(code, 0, "{name}: {out}");
        let (code, formatted) = cli(&["fmt", &path]);
        assert_eq!(code, 0, "{name}");
        assert!(
            parulel_lang::compile_with_wm(&formatted).is_ok(),
            "{name} fmt output does not compile:\n{formatted}"
        );
    }
}
