//! # parulel-cli
//!
//! The `parulel` command-line interpreter. Program files are
//! self-contained: `literalize` declarations, `(wm …)` initial facts,
//! rules and meta-rules. Three subcommands:
//!
//! ```text
//! parulel run FILE     execute a program (PARULEL or OPS5 semantics)
//! parulel check FILE   compile only; report the first error with location
//! parulel fmt FILE     print the canonical formatting to stdout
//! parulel serve        rule-serving daemon (line-delimited JSON protocol)
//! ```
//!
//! `run` options:
//!
//! ```text
//! --engine parallel|lex|mea    execution semantics   [parallel]
//! --matcher rete|treat|naive|prete:N|ptreat:N (N>=1) [rete]
//! --guard off|ww|serializable  interference guard    [off]
//! --max-cycles N               safety cycle limit    [1000000]
//! --trace [FILE]               per-cycle trace; with FILE, write a
//!                              structured JSONL trace there instead
//! --metrics-out FILE           write a JSON metrics report after the run
//! --stats                      print phase times and counters
//! --dump-wm                    print the final working memory
//! --no-log                     suppress (write …) output
//! ```
//!
//! The library half (this crate) is the testable implementation; the
//! `parulel` binary is a thin wrapper around [`run_cli`].

#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::io::Write;

/// Entry point shared by the binary and the tests: parses `argv`
/// (excluding the program name), executes, writes human output to `out`,
/// returns the process exit code.
pub fn run_cli(argv: &[String], out: &mut dyn Write) -> i32 {
    match args::Command::parse(argv) {
        Ok(args::Command::Help) => {
            let _ = writeln!(out, "{}", args::USAGE);
            0
        }
        Ok(args::Command::Run(opts)) => commands::run(&opts, out),
        Ok(args::Command::Check { file }) => commands::check(&file, out),
        Ok(args::Command::Fmt { file }) => commands::fmt(&file, out),
        Ok(args::Command::Serve(opts)) => commands::serve(&opts, out),
        Err(e) => {
            let _ = writeln!(out, "error: {e}\n\n{}", args::USAGE);
            2
        }
    }
}
