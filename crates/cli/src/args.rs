//! Hand-rolled argument parsing for the `parulel` binary.

use parulel_engine::{AutoCcc, Budgets, EvalMode, GuardMode, MatcherKind, MetricsLevel, Strategy};
use std::time::Duration;

/// Usage text shown by `--help` and on argument errors.
pub const USAGE: &str = "\
parulel — the PARULEL parallel rule language

USAGE:
  parulel run FILE [OPTIONS]    execute a program
  parulel check FILE            compile only; report errors
  parulel fmt FILE              print canonical formatting
  parulel serve [OPTIONS]       rule-serving daemon (line-delimited JSON)
  parulel --help

RUN OPTIONS:
  --engine parallel|lex|mea     firing policy: PARULEL fire-all, or
                                OPS5 select-one LEX/MEA    [parallel]
  --matcher rete|treat|naive|prete:N|ptreat:N  (N >= 1)    [rete]
  --eval bytecode|tree          evaluate rules via compiled stack
                                bytecode or by walking the IR
                                (identical results)        [bytecode]
  --auto-ccc [N]                metrics-driven copy-and-constrain: after
                                N cycles (default 3), split the hottest
                                rule across workers if shard work is
                                imbalanced; prete/ptreat only (inert,
                                with a warning, otherwise)
  --guard off|ww|serializable   interference guard; fire-all only,
                                warns under lex/mea        [off]
  --max-cycles N                safety cycle limit         [1000000]
  --trace [FILE]                print one line per cycle; with FILE,
                                write a structured JSONL trace instead
  --stats                       print phase times and counters
  --metrics-out FILE            write per-rule + matcher metrics JSON
  --dump-wm                     print the final working memory
  --no-log                      suppress (write ...) output

ROBUSTNESS OPTIONS (any engine):
  --timeout SECS                wall-clock budget for the run
  --max-wm N                    abort if working memory exceeds N WMEs
  --max-cs N                    abort if the conflict set exceeds N
  --max-delta N                 abort if one cycle changes > N WMEs
  --checkpoint-every N          keep a checkpoint every N cycles
  --checkpoint FILE             write the last checkpoint to FILE on exit
  --resume FILE                 resume from a checkpoint file

SERVE OPTIONS:
  --stdio                       serve stdin/stdout (the default)
  --tcp ADDR                    listen on a TCP address (e.g. 127.0.0.1:7466)
  --socket PATH                 listen on a Unix socket
  --max-sessions N              admission limit                  [64]
  --inject-queue N              per-session inject queue, in WME
                                changes (backpressure bound)     [1024]
  --max-cycles N                default per-run cycle limit      [1000000]
  --metrics off|rules|full      per-session metrics level        [rules]
  --wal-dir DIR                 per-session write-ahead logs under DIR;
                                sessions survive crashes and are
                                recovered at the next start
  --wal-sync always|interval|never
                                WAL fsync policy                 [always]
  --snapshot-every N            compact a session's WAL after N logged
                                frames (0 disables)              [64]
  --workers N                   shard sessions across N shared-nothing
                                scheduler threads (needs --tcp or
                                --socket)                        [1]
  --run-quantum N               slice long runs into N-cycle quanta so
                                sessions sharing a shard interleave
                                (0 = unsliced)                   [32]
  --timeout / --max-wm / --max-cs / --max-delta
                                default per-session budgets (an open
                                frame may override them)";

/// Which execution engine `run` uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineChoice {
    /// PARULEL match–redact–fire-all.
    Parallel,
    /// OPS5 baseline with this strategy.
    Serial(Strategy),
}

/// Parsed `run` options.
#[derive(Clone, Debug)]
pub struct RunOpts {
    /// Program file path.
    pub file: String,
    /// Engine selection.
    pub engine: EngineChoice,
    /// Matcher selection.
    pub matcher: MatcherKind,
    /// Rule-evaluation backend (`--eval`).
    pub eval: EvalMode,
    /// Metrics-driven copy-and-constrain (`--auto-ccc [N]`).
    pub auto_ccc: Option<AutoCcc>,
    /// Guard mode.
    pub guard: GuardMode,
    /// Cycle limit.
    pub max_cycles: u64,
    /// Print per-cycle traces.
    pub trace: bool,
    /// Write a structured JSONL trace to this file (`--trace FILE`).
    pub trace_out: Option<String>,
    /// Print run statistics.
    pub stats: bool,
    /// Write the metrics report (per-rule counters, peaks, matcher
    /// internals) as JSON to this file.
    pub metrics_out: Option<String>,
    /// Print the final working memory.
    pub dump_wm: bool,
    /// Suppress `(write …)` output.
    pub no_log: bool,
    /// Resource budgets (any engine).
    pub budgets: Budgets,
    /// Keep an in-engine checkpoint every N cycles.
    pub checkpoint_every: Option<u64>,
    /// Write the last checkpoint to this file on exit.
    pub checkpoint: Option<String>,
    /// Resume from this checkpoint file instead of the program's `(wm …)`
    /// facts.
    pub resume: Option<String>,
}

/// Where `serve` listens.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum ServeTransport {
    /// Line-delimited JSON over the process's stdin/stdout.
    #[default]
    Stdio,
    /// A TCP listener on this address.
    Tcp(String),
    /// A Unix-domain socket at this path.
    Unix(String),
}

/// Parsed `serve` options (mapped onto `parulel_server::ServerConfig`).
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Which transport to serve.
    pub transport: ServeTransport,
    /// Admission limit: concurrent sessions.
    pub max_sessions: usize,
    /// Per-session inject-queue capacity, in WME changes.
    pub inject_queue: usize,
    /// Default per-session budgets (an `open` frame may override).
    pub budgets: Budgets,
    /// Default per-run cycle limit.
    pub max_cycles: u64,
    /// Per-session metrics collection level.
    pub metrics: MetricsLevel,
    /// Durability: write-ahead-log directory (`None` = no durability).
    pub wal_dir: Option<String>,
    /// WAL fsync policy (`always`/`interval`/`never`).
    pub wal_sync: String,
    /// Compact a session's WAL after this many logged frames (0
    /// disables automatic compaction).
    pub snapshot_every: u64,
    /// Scheduler worker threads: sessions shard across this many
    /// shared-nothing workers (socket transports only; 1 = the
    /// single-threaded scheduler, still byte-compatible with the
    /// legacy single-lock server).
    pub workers: usize,
    /// Step quantum: a long `run` executes in slices of this many
    /// cycles so neighbor sessions on the same shard interleave
    /// (0 = unsliced, a run occupies its shard to completion).
    pub run_quantum: u64,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            transport: ServeTransport::Stdio,
            max_sessions: 64,
            inject_queue: 1024,
            budgets: Budgets::unlimited(),
            max_cycles: 1_000_000,
            metrics: MetricsLevel::Rules,
            wal_dir: None,
            wal_sync: "always".to_string(),
            snapshot_every: 64,
            workers: 1,
            run_quantum: 32,
        }
    }
}

/// A parsed command line.
#[derive(Clone, Debug)]
pub enum Command {
    /// `--help` (or no arguments).
    Help,
    /// `run FILE …`
    Run(Box<RunOpts>),
    /// `check FILE`
    Check {
        /// Program file path.
        file: String,
    },
    /// `fmt FILE`
    Fmt {
        /// Program file path.
        file: String,
    },
    /// `serve …`
    Serve(Box<ServeOpts>),
}

impl Command {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Command, String> {
        let mut it = argv.iter();
        let Some(cmd) = it.next() else {
            return Ok(Command::Help);
        };
        match cmd.as_str() {
            "--help" | "-h" | "help" => Ok(Command::Help),
            "check" => {
                let file = it.next().ok_or("check needs a FILE")?.clone();
                expect_end(it)?;
                Ok(Command::Check { file })
            }
            "fmt" => {
                let file = it.next().ok_or("fmt needs a FILE")?.clone();
                expect_end(it)?;
                Ok(Command::Fmt { file })
            }
            "run" => {
                let file = it.next().ok_or("run needs a FILE")?.clone();
                let mut opts = RunOpts {
                    file,
                    engine: EngineChoice::Parallel,
                    matcher: MatcherKind::Rete,
                    eval: EvalMode::default(),
                    auto_ccc: None,
                    guard: GuardMode::Off,
                    max_cycles: 1_000_000,
                    trace: false,
                    trace_out: None,
                    stats: false,
                    metrics_out: None,
                    dump_wm: false,
                    no_log: false,
                    budgets: Budgets::unlimited(),
                    checkpoint_every: None,
                    checkpoint: None,
                    resume: None,
                };
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--engine" => {
                            opts.engine = match next_val(&mut it, flag)?.as_str() {
                                "parallel" => EngineChoice::Parallel,
                                "lex" => EngineChoice::Serial(Strategy::Lex),
                                "mea" => EngineChoice::Serial(Strategy::Mea),
                                other => return Err(format!("unknown engine '{other}'")),
                            }
                        }
                        "--matcher" => opts.matcher = parse_matcher(&next_val(&mut it, flag)?)?,
                        "--eval" => {
                            let mode = next_val(&mut it, flag)?;
                            opts.eval = EvalMode::parse(&mode).ok_or_else(|| {
                                format!("unknown eval mode '{mode}' (want bytecode|tree)")
                            })?;
                        }
                        // `--auto-ccc` is bare (defaults) or takes an
                        // optional cycle count, like `--trace [FILE]`.
                        "--auto-ccc" => match it.clone().next() {
                            Some(next) if !next.starts_with('-') => {
                                let after_cycles = next_val(&mut it, flag)?.parse().map_err(
                                    |_| "--auto-ccc needs an integer cycle count".to_string(),
                                )?;
                                opts.auto_ccc = Some(AutoCcc {
                                    after_cycles,
                                    ..AutoCcc::default()
                                });
                            }
                            _ => opts.auto_ccc = Some(AutoCcc::default()),
                        },
                        "--guard" => {
                            opts.guard = match next_val(&mut it, flag)?.as_str() {
                                "off" => GuardMode::Off,
                                "ww" => GuardMode::WriteWrite,
                                "serializable" => GuardMode::Serializable,
                                other => return Err(format!("unknown guard '{other}'")),
                            }
                        }
                        "--max-cycles" => {
                            opts.max_cycles = next_val(&mut it, flag)?
                                .parse()
                                .map_err(|_| "--max-cycles needs an integer".to_string())?
                        }
                        // `--trace` keeps its original bare-flag meaning
                        // (human-readable per-cycle lines); an optional
                        // non-flag value names a JSONL sink instead.
                        "--trace" => match it.clone().next() {
                            Some(next) if !next.starts_with('-') => {
                                opts.trace_out = Some(next_val(&mut it, flag)?);
                            }
                            _ => opts.trace = true,
                        },
                        "--stats" => opts.stats = true,
                        "--metrics-out" => opts.metrics_out = Some(next_val(&mut it, flag)?),
                        "--dump-wm" => opts.dump_wm = true,
                        "--no-log" => opts.no_log = true,
                        "--timeout" => {
                            let secs: f64 = next_val(&mut it, flag)?
                                .parse()
                                .map_err(|_| "--timeout needs a number of seconds".to_string())?;
                            if !secs.is_finite() || secs < 0.0 {
                                return Err("--timeout needs a non-negative number".into());
                            }
                            opts.budgets.timeout = Some(Duration::from_secs_f64(secs));
                        }
                        "--max-wm" => opts.budgets.max_wm = Some(parse_count(&mut it, flag)?),
                        "--max-cs" => {
                            opts.budgets.max_conflict_set = Some(parse_count(&mut it, flag)?)
                        }
                        "--max-delta" => {
                            opts.budgets.max_delta = Some(parse_count(&mut it, flag)?)
                        }
                        "--checkpoint-every" => {
                            opts.checkpoint_every = Some(parse_count(&mut it, flag)? as u64)
                        }
                        "--checkpoint" => opts.checkpoint = Some(next_val(&mut it, flag)?),
                        "--resume" => opts.resume = Some(next_val(&mut it, flag)?),
                        other => return Err(format!("unknown option '{other}'")),
                    }
                }
                Ok(Command::Run(Box::new(opts)))
            }
            "serve" => {
                let mut opts = ServeOpts::default();
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--stdio" => opts.transport = ServeTransport::Stdio,
                        "--tcp" => opts.transport = ServeTransport::Tcp(next_val(&mut it, flag)?),
                        "--socket" => {
                            opts.transport = ServeTransport::Unix(next_val(&mut it, flag)?)
                        }
                        "--max-sessions" => {
                            opts.max_sessions = parse_count(&mut it, flag)?;
                            if opts.max_sessions == 0 {
                                return Err("--max-sessions must be at least 1".into());
                            }
                        }
                        "--inject-queue" => {
                            opts.inject_queue = parse_count(&mut it, flag)?;
                            if opts.inject_queue == 0 {
                                return Err("--inject-queue must be at least 1".into());
                            }
                        }
                        "--max-cycles" => {
                            opts.max_cycles = next_val(&mut it, flag)?
                                .parse()
                                .map_err(|_| "--max-cycles needs an integer".to_string())?
                        }
                        "--metrics" => {
                            opts.metrics = match next_val(&mut it, flag)?.as_str() {
                                "off" => MetricsLevel::Off,
                                "rules" => MetricsLevel::Rules,
                                "full" => MetricsLevel::Full,
                                other => return Err(format!("unknown metrics level '{other}'")),
                            }
                        }
                        "--timeout" => {
                            let secs: f64 = next_val(&mut it, flag)?
                                .parse()
                                .map_err(|_| "--timeout needs a number of seconds".to_string())?;
                            if !secs.is_finite() || secs < 0.0 {
                                return Err("--timeout needs a non-negative number".into());
                            }
                            opts.budgets.timeout = Some(Duration::from_secs_f64(secs));
                        }
                        "--max-wm" => opts.budgets.max_wm = Some(parse_count(&mut it, flag)?),
                        "--max-cs" => {
                            opts.budgets.max_conflict_set = Some(parse_count(&mut it, flag)?)
                        }
                        "--max-delta" => {
                            opts.budgets.max_delta = Some(parse_count(&mut it, flag)?)
                        }
                        "--wal-dir" => opts.wal_dir = Some(next_val(&mut it, flag)?),
                        "--wal-sync" => {
                            let policy = next_val(&mut it, flag)?;
                            // Validate at parse time so a typo fails the
                            // command line, not the daemon start.
                            parulel_server::SyncPolicy::parse(&policy)?;
                            opts.wal_sync = policy;
                        }
                        "--snapshot-every" => {
                            opts.snapshot_every = next_val(&mut it, flag)?
                                .parse()
                                .map_err(|_| "--snapshot-every needs an integer".to_string())?
                        }
                        "--workers" => {
                            opts.workers = parse_count(&mut it, flag)?;
                            if opts.workers == 0 {
                                return Err("--workers must be at least 1".into());
                            }
                        }
                        "--run-quantum" => {
                            opts.run_quantum = next_val(&mut it, flag)?
                                .parse()
                                .map_err(|_| "--run-quantum needs an integer".to_string())?
                        }
                        other => return Err(format!("unknown option '{other}'")),
                    }
                }
                if opts.wal_dir.is_none()
                    && (opts.wal_sync != "always" || opts.snapshot_every != 64)
                {
                    return Err("--wal-sync/--snapshot-every need --wal-dir".into());
                }
                if opts.transport == ServeTransport::Stdio && opts.workers > 1 {
                    // Stdio is one synchronous pipe — there is nothing to
                    // shard, and pretending otherwise would silently serve
                    // different semantics than the flag promises.
                    return Err("--workers needs --tcp or --socket".into());
                }
                Ok(Command::Serve(Box::new(opts)))
            }
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

fn expect_end(mut it: std::slice::Iter<'_, String>) -> Result<(), String> {
    match it.next() {
        None => Ok(()),
        Some(extra) => Err(format!("unexpected argument '{extra}'")),
    }
}

fn next_val(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_count(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<usize, String> {
    next_val(it, flag)?
        .parse()
        .map_err(|_| format!("{flag} needs an integer"))
}

fn parse_matcher(s: &str) -> Result<MatcherKind, String> {
    match s {
        "rete" => Ok(MatcherKind::Rete),
        "treat" => Ok(MatcherKind::Treat),
        "naive" => Ok(MatcherKind::Naive),
        _ => {
            if let Some(n) = s.strip_prefix("prete:") {
                Ok(MatcherKind::PartitionedRete(parse_workers(s, n)?))
            } else if let Some(n) = s.strip_prefix("ptreat:") {
                Ok(MatcherKind::PartitionedTreat(parse_workers(s, n)?))
            } else {
                Err(format!("unknown matcher '{s}'"))
            }
        }
    }
}

fn parse_workers(matcher: &str, n: &str) -> Result<usize, String> {
    let n: usize = n
        .parse()
        .map_err(|_| format!("bad worker count in '{matcher}'"))?;
    if n == 0 {
        // A zero-shard matcher cannot exist; silently running with one
        // shard would let stats and bench labels lie about parallelism.
        return Err(format!(
            "'{matcher}': worker count must be at least 1 \
             (use 'rete' or 'treat' for a single unpartitioned matcher)"
        ));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Command, String> {
        let v: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        Command::parse(&v)
    }

    #[test]
    fn help_and_empty() {
        assert!(matches!(parse(&[]), Ok(Command::Help)));
        assert!(matches!(parse(&["--help"]), Ok(Command::Help)));
        assert!(matches!(parse(&["help"]), Ok(Command::Help)));
    }

    #[test]
    fn run_defaults() {
        let Ok(Command::Run(o)) = parse(&["run", "prog.pll"]) else {
            panic!()
        };
        assert_eq!(o.file, "prog.pll");
        assert_eq!(o.engine, EngineChoice::Parallel);
        assert_eq!(o.matcher, MatcherKind::Rete);
        assert_eq!(o.eval, EvalMode::Bytecode);
        assert!(!o.trace && !o.stats && !o.dump_wm && !o.no_log);
    }

    #[test]
    fn eval_flag_parses() {
        let Ok(Command::Run(o)) = parse(&["run", "x", "--eval", "tree"]) else {
            panic!()
        };
        assert_eq!(o.eval, EvalMode::Tree);
        let Ok(Command::Run(o)) = parse(&["run", "x", "--eval", "bytecode"]) else {
            panic!()
        };
        assert_eq!(o.eval, EvalMode::Bytecode);
        assert!(parse(&["run", "x", "--eval"]).is_err());
        assert!(parse(&["run", "x", "--eval", "jit"]).is_err());
    }

    #[test]
    fn run_full_flags() {
        let Ok(Command::Run(o)) = parse(&[
            "run",
            "x.pll",
            "--engine",
            "mea",
            "--matcher",
            "prete:4",
            "--guard",
            "serializable",
            "--max-cycles",
            "99",
            "--trace",
            "--stats",
            "--dump-wm",
            "--no-log",
        ]) else {
            panic!()
        };
        assert_eq!(o.engine, EngineChoice::Serial(Strategy::Mea));
        assert_eq!(o.matcher, MatcherKind::PartitionedRete(4));
        assert_eq!(o.guard, GuardMode::Serializable);
        assert_eq!(o.max_cycles, 99);
        assert!(o.trace && o.stats && o.dump_wm && o.no_log);
    }

    #[test]
    fn matcher_parse_errors() {
        assert!(parse(&["run", "x", "--matcher", "bogus"]).is_err());
        assert!(parse(&["run", "x", "--matcher", "prete:"]).is_err());
        assert!(parse(&["run", "x", "--matcher", "prete:abc"]).is_err());
    }

    #[test]
    fn zero_workers_rejected_with_clear_error() {
        for m in ["ptreat:0", "prete:0"] {
            let err = parse(&["run", "x", "--matcher", m]).unwrap_err();
            assert!(err.contains("worker count must be at least 1"), "{err}");
            assert!(err.contains(m), "{err}");
        }
        // 1 remains valid (a degenerate but honest partition).
        let Ok(Command::Run(o)) = parse(&["run", "x", "--matcher", "ptreat:1"]) else {
            panic!()
        };
        assert_eq!(o.matcher, MatcherKind::PartitionedTreat(1));
    }

    #[test]
    fn trace_flag_is_bare_or_takes_a_sink_path() {
        // Bare: human-readable per-cycle lines.
        let Ok(Command::Run(o)) = parse(&["run", "x", "--trace", "--stats"]) else {
            panic!()
        };
        assert!(o.trace && o.stats);
        assert!(o.trace_out.is_none());
        // Trailing bare flag.
        let Ok(Command::Run(o)) = parse(&["run", "x", "--trace"]) else {
            panic!()
        };
        assert!(o.trace && o.trace_out.is_none());
        // With a path: JSONL sink, no human trace.
        let Ok(Command::Run(o)) = parse(&["run", "x", "--trace", "t.jsonl"]) else {
            panic!()
        };
        assert!(!o.trace);
        assert_eq!(o.trace_out.as_deref(), Some("t.jsonl"));
    }

    #[test]
    fn auto_ccc_flag_is_bare_or_takes_a_cycle_count() {
        let Ok(Command::Run(o)) = parse(&["run", "x"]) else {
            panic!()
        };
        assert!(o.auto_ccc.is_none(), "off by default");
        // Bare: library defaults.
        let Ok(Command::Run(o)) = parse(&["run", "x", "--auto-ccc", "--stats"]) else {
            panic!()
        };
        assert_eq!(o.auto_ccc, Some(AutoCcc::default()));
        assert!(o.stats);
        // Trailing bare flag.
        let Ok(Command::Run(o)) = parse(&["run", "x", "--auto-ccc"]) else {
            panic!()
        };
        assert_eq!(o.auto_ccc, Some(AutoCcc::default()));
        // With a cycle count.
        let Ok(Command::Run(o)) = parse(&["run", "x", "--auto-ccc", "7"]) else {
            panic!()
        };
        assert_eq!(o.auto_ccc.unwrap().after_cycles, 7);
        assert!(parse(&["run", "x", "--auto-ccc", "soonish"]).is_err());
    }

    #[test]
    fn metrics_out_takes_a_path() {
        let Ok(Command::Run(o)) = parse(&["run", "x", "--metrics-out", "m.json"]) else {
            panic!()
        };
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
        assert!(parse(&["run", "x", "--metrics-out"]).is_err());
    }

    #[test]
    fn robustness_flags_parse() {
        let Ok(Command::Run(o)) = parse(&[
            "run",
            "x.pll",
            "--timeout",
            "2.5",
            "--max-wm",
            "1000",
            "--max-cs",
            "500",
            "--max-delta",
            "200",
            "--checkpoint-every",
            "10",
            "--checkpoint",
            "state.snap",
            "--resume",
            "old.snap",
        ]) else {
            panic!()
        };
        assert_eq!(
            o.budgets.timeout,
            Some(std::time::Duration::from_millis(2500))
        );
        assert_eq!(o.budgets.max_wm, Some(1000));
        assert_eq!(o.budgets.max_conflict_set, Some(500));
        assert_eq!(o.budgets.max_delta, Some(200));
        assert_eq!(o.checkpoint_every, Some(10));
        assert_eq!(o.checkpoint.as_deref(), Some("state.snap"));
        assert_eq!(o.resume.as_deref(), Some("old.snap"));
        // Defaults are all off.
        let Ok(Command::Run(o)) = parse(&["run", "x.pll"]) else {
            panic!()
        };
        assert!(o.budgets.is_unlimited());
        assert!(o.checkpoint_every.is_none() && o.checkpoint.is_none() && o.resume.is_none());
    }

    #[test]
    fn robustness_flags_work_with_any_engine_but_reject_bad_values() {
        // Regression (engine unification): budgets/checkpoint/resume used
        // to be parallel-only hard errors; the unified core serves every
        // policy, so serial engines accept them now.
        let Ok(Command::Run(o)) = parse(&["run", "x", "--engine", "lex", "--max-wm", "5"]) else {
            panic!()
        };
        assert_eq!(o.engine, EngineChoice::Serial(Strategy::Lex));
        assert_eq!(o.budgets.max_wm, Some(5));
        let Ok(Command::Run(o)) = parse(&["run", "x", "--resume", "s.snap", "--engine", "mea"])
        else {
            panic!()
        };
        assert_eq!(o.resume.as_deref(), Some("s.snap"));
        assert!(parse(&["run", "x", "--timeout", "-1"]).is_err());
        assert!(parse(&["run", "x", "--timeout", "inf"]).is_err());
        assert!(parse(&["run", "x", "--timeout", "soon"]).is_err());
        assert!(parse(&["run", "x", "--max-wm", "many"]).is_err());
        assert!(parse(&["run", "x", "--checkpoint"]).is_err());
    }

    #[test]
    fn serve_defaults_to_stdio() {
        let Ok(Command::Serve(o)) = parse(&["serve"]) else {
            panic!()
        };
        assert_eq!(o.transport, ServeTransport::Stdio);
        assert_eq!(o.max_sessions, 64);
        assert_eq!(o.inject_queue, 1024);
        assert_eq!(o.max_cycles, 1_000_000);
        assert_eq!(o.metrics, MetricsLevel::Rules);
        assert!(o.budgets.is_unlimited());
        assert_eq!(o.wal_dir, None);
        assert_eq!(o.wal_sync, "always");
        assert_eq!(o.snapshot_every, 64);
        assert_eq!(o.workers, 1);
        assert_eq!(o.run_quantum, 32);
    }

    #[test]
    fn serve_scheduler_flags_parse() {
        let Ok(Command::Serve(o)) = parse(&[
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--run-quantum",
            "8",
        ]) else {
            panic!()
        };
        assert_eq!(o.workers, 4);
        assert_eq!(o.run_quantum, 8);
        // `--run-quantum 0` means unsliced runs; still legal.
        let Ok(Command::Serve(o)) =
            parse(&["serve", "--socket", "/tmp/s.sock", "--run-quantum", "0"])
        else {
            panic!()
        };
        assert_eq!(o.run_quantum, 0);
        // Quantum without extra workers is fine on stdio (there is a
        // scheduler of one behind sockets, none behind stdio).
        assert!(parse(&["serve", "--workers", "1"]).is_ok());
    }

    #[test]
    fn serve_scheduler_flags_reject_bad_values() {
        assert!(parse(&["serve", "--workers", "0"]).is_err());
        assert!(parse(&["serve", "--workers", "some"]).is_err());
        assert!(parse(&["serve", "--run-quantum", "fast"]).is_err());
        // Sharding stdin across threads is meaningless; refuse loudly.
        assert!(parse(&["serve", "--workers", "4"]).is_err());
        assert!(parse(&["serve", "--stdio", "--workers", "2"]).is_err());
    }

    #[test]
    fn serve_wal_flags_parse() {
        let Ok(Command::Serve(o)) = parse(&[
            "serve",
            "--wal-dir",
            "/tmp/parulel-wal",
            "--wal-sync",
            "interval",
            "--snapshot-every",
            "16",
        ]) else {
            panic!()
        };
        assert_eq!(o.wal_dir.as_deref(), Some("/tmp/parulel-wal"));
        assert_eq!(o.wal_sync, "interval");
        assert_eq!(o.snapshot_every, 16);
        // `--snapshot-every 0` disables compaction but is legal.
        let Ok(Command::Serve(o)) =
            parse(&["serve", "--wal-dir", "d", "--snapshot-every", "0"])
        else {
            panic!()
        };
        assert_eq!(o.snapshot_every, 0);
    }

    #[test]
    fn serve_wal_flags_reject_bad_values() {
        assert!(parse(&["serve", "--wal-dir"]).is_err());
        assert!(parse(&["serve", "--wal-dir", "d", "--wal-sync", "sometimes"]).is_err());
        assert!(parse(&["serve", "--wal-dir", "d", "--snapshot-every", "few"]).is_err());
        // Tuning flags without the directory are a config mistake.
        assert!(parse(&["serve", "--wal-sync", "never"]).is_err());
        assert!(parse(&["serve", "--snapshot-every", "8"]).is_err());
    }

    #[test]
    fn serve_flags_parse() {
        let Ok(Command::Serve(o)) = parse(&[
            "serve",
            "--tcp",
            "127.0.0.1:7466",
            "--max-sessions",
            "8",
            "--inject-queue",
            "256",
            "--max-cycles",
            "500",
            "--metrics",
            "full",
            "--timeout",
            "1.5",
            "--max-wm",
            "4000",
            "--max-cs",
            "900",
            "--max-delta",
            "300",
        ]) else {
            panic!()
        };
        assert_eq!(o.transport, ServeTransport::Tcp("127.0.0.1:7466".into()));
        assert_eq!(o.max_sessions, 8);
        assert_eq!(o.inject_queue, 256);
        assert_eq!(o.max_cycles, 500);
        assert_eq!(o.metrics, MetricsLevel::Full);
        assert_eq!(
            o.budgets.timeout,
            Some(std::time::Duration::from_millis(1500))
        );
        assert_eq!(o.budgets.max_wm, Some(4000));
        assert_eq!(o.budgets.max_conflict_set, Some(900));
        assert_eq!(o.budgets.max_delta, Some(300));

        let Ok(Command::Serve(o)) = parse(&["serve", "--socket", "/tmp/parulel.sock"]) else {
            panic!()
        };
        assert_eq!(o.transport, ServeTransport::Unix("/tmp/parulel.sock".into()));
        // The last transport flag wins.
        let Ok(Command::Serve(o)) = parse(&["serve", "--tcp", "127.0.0.1:1", "--stdio"]) else {
            panic!()
        };
        assert_eq!(o.transport, ServeTransport::Stdio);
    }

    #[test]
    fn serve_rejects_bad_values() {
        assert!(parse(&["serve", "--tcp"]).is_err());
        assert!(parse(&["serve", "--socket"]).is_err());
        assert!(parse(&["serve", "--max-sessions", "0"]).is_err());
        assert!(parse(&["serve", "--inject-queue", "0"]).is_err());
        assert!(parse(&["serve", "--max-cycles", "many"]).is_err());
        assert!(parse(&["serve", "--metrics", "loud"]).is_err());
        assert!(parse(&["serve", "--timeout", "-2"]).is_err());
        assert!(parse(&["serve", "--bogus"]).is_err());
    }

    #[test]
    fn error_cases() {
        assert!(parse(&["run"]).is_err());
        assert!(parse(&["check"]).is_err());
        assert!(parse(&["check", "a", "b"]).is_err());
        assert!(parse(&["run", "x", "--engine"]).is_err());
        assert!(parse(&["run", "x", "--engine", "warp"]).is_err());
        assert!(parse(&["run", "x", "--max-cycles", "many"]).is_err());
        assert!(parse(&["explode"]).is_err());
        assert!(parse(&["run", "x", "--bogus"]).is_err());
    }
}
