//! Implementations of the `run`, `check` and `fmt` subcommands.

use crate::args::{EngineChoice, RunOpts, ServeOpts, ServeTransport};
use parulel_core::WorkingMemory;
use parulel_engine::{
    Engine, EngineMetrics, EngineOptions, FiringPolicy, GuardMode, MatcherKind, MetricsLevel,
    Outcome, RunStats, Snapshot, TraceBuffer,
};
use parulel_match::MatcherMetrics;
use std::io::Write;

/// Ring capacity for `--trace FILE`: big enough to keep every event of a
/// realistic run, bounded so a runaway keeps only its tail.
const TRACE_RING: usize = 65_536;

fn read_file(path: &str, out: &mut dyn Write) -> Option<String> {
    match std::fs::read_to_string(path) {
        Ok(src) => Some(src),
        Err(e) => {
            let _ = writeln!(out, "error: cannot read {path}: {e}");
            None
        }
    }
}

/// `parulel check FILE` — compile, report the first diagnostic.
pub fn check(path: &str, out: &mut dyn Write) -> i32 {
    let Some(src) = read_file(path, out) else {
        return 1;
    };
    match parulel_lang::compile_with_wm(&src) {
        Ok((program, wm)) => {
            let _ = writeln!(
                out,
                "{path}: ok ({} classes, {} rules, {} meta-rules, {} initial facts)",
                program.classes.len(),
                program.rules().len(),
                program.metas().len(),
                wm.len()
            );
            0
        }
        Err(e) => {
            let _ = writeln!(out, "{path}:{e}");
            1
        }
    }
}

/// `parulel fmt FILE` — parse and print the canonical form.
pub fn fmt(path: &str, out: &mut dyn Write) -> i32 {
    let Some(src) = read_file(path, out) else {
        return 1;
    };
    match parulel_lang::parse(&src) {
        Ok(ast) => {
            let _ = write!(out, "{}", parulel_lang::printer::print_program(&ast));
            0
        }
        Err(e) => {
            let _ = writeln!(out, "{path}:{e}");
            1
        }
    }
}

/// `parulel run FILE …` — execute.
pub fn run(opts: &RunOpts, out: &mut dyn Write) -> i32 {
    let Some(src) = read_file(&opts.file, out) else {
        return 1;
    };
    let (program, wm) = match parulel_lang::compile_with_wm(&src) {
        Ok(pair) => pair,
        Err(e) => {
            let _ = writeln!(out, "{}:{e}", opts.file);
            return 1;
        }
    };
    if opts.auto_ccc.is_some()
        && !matches!(
            opts.matcher,
            MatcherKind::PartitionedRete(_) | MatcherKind::PartitionedTreat(_)
        )
    {
        let _ = writeln!(
            out,
            "warning: --auto-ccc has no effect without a partitioned matcher \
             (use --matcher prete:N or ptreat:N)"
        );
    }
    let engine_opts = EngineOptions {
        matcher: opts.matcher,
        eval: opts.eval,
        auto_ccc: opts.auto_ccc,
        max_cycles: opts.max_cycles,
        collect_log: !opts.no_log,
        trace: opts.trace,
        budgets: opts.budgets.clone(),
        checkpoint_every: opts.checkpoint_every,
        metrics: if opts.metrics_out.is_some() {
            MetricsLevel::Full
        } else {
            MetricsLevel::Off
        },
        trace_events: opts.trace_out.as_ref().map(|_| TRACE_RING),
        ..Default::default()
    };

    // The CLI no longer branches on engine type: --engine picks a
    // firing policy, and one unified path drives the engine — so
    // budgets, checkpoint/resume, metrics, and traces work identically
    // for every policy.
    let policy = match opts.engine {
        EngineChoice::Parallel => FiringPolicy::FireAll {
            meta: true,
            guard: opts.guard,
        },
        EngineChoice::Serial(strategy) => FiringPolicy::SelectOne(strategy),
    };
    if matches!(policy, FiringPolicy::SelectOne(_)) && opts.guard != GuardMode::Off {
        let _ = writeln!(
            out,
            "warning: --guard is ignored by --engine lex/mea \
             (a select-one policy fires a single instantiation per cycle)"
        );
    }

    // `--resume FILE` replaces the program's `(wm …)` facts with the
    // checkpointed state.
    let mut e = if let Some(path) = &opts.resume {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(err) => {
                let _ = writeln!(out, "error: cannot read {path}: {err}");
                return 1;
            }
        };
        let snap = match Snapshot::from_bytes(&bytes) {
            Ok(s) => s,
            Err(err) => {
                let _ = writeln!(out, "error: {path}: {err}");
                return 1;
            }
        };
        if snap.policy != policy.tag() {
            let _ = writeln!(
                out,
                "note: {path} was captured under policy '{}'; continuing under '{}'",
                snap.policy,
                policy.tag()
            );
        }
        match Engine::resume_with_policy(&program, &snap, policy, engine_opts) {
            Ok(e) => e,
            Err(err) => {
                let _ = writeln!(out, "error: cannot resume from {path}: {err}");
                return 1;
            }
        }
    } else {
        Engine::with_policy(&program, wm, policy, engine_opts)
    };
    let mm = e.matcher_metrics();
    let mut code = match e.run() {
        Ok(o) => {
            for line in e.traces() {
                let _ = writeln!(out, "{line}");
            }
            finish(out, opts, o, e.log(), e.stats(), e.wm(), e.program(), &mm)
        }
        Err(err) => {
            let _ = writeln!(out, "runtime error: {err}");
            1
        }
    };
    // The sinks are written even when the run failed: a trace that
    // ends in a budget trip is exactly the one worth keeping.
    if !write_sinks(
        out,
        opts,
        e.metrics(),
        e.program(),
        &e.matcher_metrics(),
        e.stats(),
        e.trace_events(),
    ) && code == 0
    {
        code = 1;
    }
    // `--checkpoint FILE`: persist the last captured checkpoint (a
    // budget trip always captures one; a clean exit falls back to the
    // final state), whatever the exit code.
    if let Some(path) = &opts.checkpoint {
        let snap = e
            .latest_checkpoint()
            .cloned()
            .unwrap_or_else(|| e.checkpoint());
        match std::fs::write(path, snap.to_bytes()) {
            Ok(()) => {
                let _ = writeln!(out, "checkpoint written to {path} (cycle {})", snap.cycle);
            }
            Err(err) => {
                let _ = writeln!(out, "error: cannot write {path}: {err}");
                return 1;
            }
        }
    }
    code
}

/// Write the `--metrics-out` and `--trace FILE` sinks, if requested.
/// Returns `false` if any requested sink could not be written.
fn write_sinks(
    out: &mut dyn Write,
    opts: &RunOpts,
    metrics: &EngineMetrics,
    program: &parulel_core::Program,
    matcher: &MatcherMetrics,
    stats: &RunStats,
    trace: Option<&TraceBuffer>,
) -> bool {
    let mut ok = true;
    if let Some(path) = &opts.metrics_out {
        let doc = metrics.to_json(program, matcher, stats);
        match std::fs::write(path, doc.pretty()) {
            Ok(()) => {
                let _ = writeln!(out, "metrics written to {path}");
            }
            Err(e) => {
                let _ = writeln!(out, "error: cannot write {path}: {e}");
                ok = false;
            }
        }
    }
    if let Some(path) = &opts.trace_out {
        let body = trace.map(TraceBuffer::to_jsonl).unwrap_or_default();
        match std::fs::write(path, body) {
            Ok(()) => {
                let _ = writeln!(out, "trace written to {path}");
            }
            Err(e) => {
                let _ = writeln!(out, "error: cannot write {path}: {e}");
                ok = false;
            }
        }
    }
    ok
}

#[allow(clippy::too_many_arguments)]
fn finish(
    out: &mut dyn Write,
    opts: &RunOpts,
    outcome: Outcome,
    log: &[String],
    stats: &RunStats,
    wm: &WorkingMemory,
    program: &parulel_core::Program,
    matcher: &MatcherMetrics,
) -> i32 {
    for line in log {
        let _ = writeln!(out, "{line}");
    }
    let ending = if outcome.halted {
        "halt"
    } else if outcome.hit_cycle_limit {
        "cycle limit"
    } else {
        "quiescence"
    };
    let _ = writeln!(
        out,
        "== {} firings in {} cycles ({ending}) ==",
        outcome.firings, outcome.cycles
    );
    if opts.stats {
        let _ = writeln!(
            out,
            "   firings/cycle {:.2} | peak eligible {} | redacted meta {} guard {}",
            stats.firings_per_cycle(),
            stats.peak_eligible,
            stats.redacted_meta,
            stats.redacted_guard
        );
        let _ = writeln!(
            out,
            "   match {:?} | redact {:?} | fire {:?} | apply {:?}",
            stats.match_time, stats.redact_time, stats.fire_time, stats.apply_time
        );
        // Report the shard count actually in effect, which may differ
        // from the requested one (a partitioned matcher never runs with
        // fewer than one shard).
        let _ = writeln!(
            out,
            "   matcher {} | shards {}",
            matcher.kind, matcher.shards
        );
    }
    if opts.dump_wm {
        let _ = writeln!(out, "-- final working memory ({} elements) --", wm.len());
        for w in wm.sorted_snapshot() {
            let decl = program.classes.decl(w.class);
            let mut line = format!("  ({}", program.interner.resolve(decl.name));
            for (attr, value) in decl.attrs.iter().zip(w.fields.iter()) {
                line.push_str(&format!(
                    " ^{} {}",
                    program.interner.resolve(*attr),
                    value.display(&program.interner)
                ));
            }
            line.push(')');
            let _ = writeln!(out, "{line}");
        }
    }
    if outcome.hit_cycle_limit {
        3
    } else {
        0
    }
}

/// Maps the parsed `serve` flags onto the daemon's config.
pub(crate) fn server_config(opts: &ServeOpts) -> parulel_server::ServerConfig {
    parulel_server::ServerConfig {
        max_sessions: opts.max_sessions,
        inject_queue: opts.inject_queue,
        default_budgets: opts.budgets.clone(),
        max_cycles: opts.max_cycles,
        metrics: opts.metrics,
        ..parulel_server::ServerConfig::default()
    }
}

/// Capacity of each scheduler shard's frame inbox: frames queued beyond
/// this come back as backpressure error frames (the inject-queue
/// pattern applied to the scheduling layer).
const SHARD_INBOX: usize = 256;

/// Resolves the `--wal-dir`/`--wal-sync`/`--snapshot-every` flags into
/// a WAL config (`None` without `--wal-dir`).
fn wal_config(opts: &ServeOpts) -> Result<Option<parulel_server::WalConfig>, String> {
    let Some(dir) = &opts.wal_dir else {
        return Ok(None);
    };
    let sync = parulel_server::SyncPolicy::parse(&opts.wal_sync)?;
    let mut wal = parulel_server::WalConfig::new(dir, sync);
    wal.snapshot_every = opts.snapshot_every;
    Ok(Some(wal))
}

/// Builds one server per scheduler shard. All shards share one
/// admission gauge (so `--max-sessions` bounds the daemon, not each
/// shard) and one shutdown flag. With `--wal-dir`, each shard recovers
/// exactly the WAL files whose sessions hash to it — the same
/// partition the scheduler routes live frames by — before any
/// transport accepts a frame.
fn build_shard_servers(opts: &ServeOpts) -> Result<Vec<parulel_server::Server>, String> {
    let config = server_config(opts);
    let wal = wal_config(opts)?;
    let mut servers: Vec<parulel_server::Server> = Vec::with_capacity(opts.workers);
    let mut recovery = parulel_server::RecoveryReport::default();
    for shard in 0..opts.workers {
        let mut server = match &wal {
            Some(w) => parulel_server::Server::with_wal(config.clone(), w.clone()),
            None => parulel_server::Server::new(config.clone()),
        };
        if let Some(first) = servers.first() {
            server.share_admission(first.admission_gauge(), first.shutdown_signal());
        }
        if let Some(w) = &wal {
            let report = parulel_server::recover_shard(&mut server, w, shard, opts.workers);
            recovery.sessions_recovered += report.sessions_recovered;
            recovery.sessions_skipped += report.sessions_skipped;
            recovery.frames_replayed += report.frames_replayed;
            recovery.torn_records += report.torn_records;
            recovery.notes.extend(report.notes);
        }
        servers.push(server);
    }
    if wal.is_some() {
        eprintln!("parulel serve: recovery: {}", recovery.summary());
        for note in &recovery.notes {
            eprintln!("parulel serve: recovery: {note}");
        }
    }
    Ok(servers)
}

/// `parulel serve …` — run the rule-serving daemon until a `shutdown`
/// frame (or, on the socket transports, SIGTERM/SIGINT) arrives.
/// Listener announcements go to `out`; on the stdio transport stdout
/// *is* the protocol stream, so the banner goes to stderr instead.
///
/// The socket transports serve through the sharded scheduler and its
/// `poll(2)` dispatcher (`--workers` shards, `--run-quantum`-cycle run
/// slices); stdio stays the plain synchronous pump.
pub fn serve(opts: &ServeOpts, out: &mut dyn Write) -> i32 {
    let servers = match build_shard_servers(opts) {
        Ok(servers) => servers,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 1;
        }
    };
    let result = match &opts.transport {
        ServeTransport::Stdio => {
            eprintln!(
                "parulel serve: line-delimited JSON on stdio ({} sessions max); \
                 send {{\"op\":\"shutdown\"}} to stop",
                opts.max_sessions
            );
            let server = servers.into_iter().next().expect("one stdio server");
            parulel_server::serve_stdio_with(std::sync::Arc::new(std::sync::Mutex::new(server)))
        }
        ServeTransport::Tcp(addr) => parulel_server::spawn_sched_tcp(
            servers,
            opts.run_quantum,
            SHARD_INBOX,
            addr,
            parulel_server::EventLoopOpts::default(),
        )
        .map(|(bound, dispatcher)| {
            let _ = writeln!(out, "listening on tcp {bound}");
            let _ = dispatcher.join();
        }),
        ServeTransport::Unix(path) => {
            let _ = writeln!(out, "listening on unix {path}");
            parulel_server::serve_sched_unix(
                servers,
                opts.run_quantum,
                SHARD_INBOX,
                path,
                parulel_server::EventLoopOpts::default(),
            )
        }
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::args::Command;
    use crate::run_cli;

    const PROGRAM: &str = "
        (literalize count n)
        (wm (count ^n 0))
        (p step (count ^n <n>) (test (< <n> 3)) --> (modify 1 ^n (+ <n> 1)))
    ";

    fn temp_file(contents: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "parulel-cli-test-{}-{:x}.pll",
            std::process::id(),
            contents.len() * 31
                + contents
                    .as_bytes()
                    .iter()
                    .map(|&b| b as usize)
                    .sum::<usize>()
        ));
        std::fs::write(&path, contents).unwrap();
        path
    }

    fn cli(words: &[&str]) -> (i32, String) {
        let argv: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let code = run_cli(&argv, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn run_counts_to_three() {
        let f = temp_file(PROGRAM);
        let (code, output) = cli(&["run", f.to_str().unwrap(), "--dump-wm", "--stats"]);
        assert_eq!(code, 0, "{output}");
        assert!(output.contains("3 firings in 3 cycles"), "{output}");
        assert!(output.contains("(count ^n 3)"), "{output}");
        assert!(output.contains("firings/cycle"), "{output}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn run_with_trace_and_serial_engine() {
        let f = temp_file(PROGRAM);
        let (code, output) = cli(&[
            "run",
            f.to_str().unwrap(),
            "--engine",
            "lex",
            "--matcher",
            "treat",
        ]);
        assert_eq!(code, 0, "{output}");
        assert!(output.contains("3 firings in 3 cycles"), "{output}");
        let (code, output) = cli(&["run", f.to_str().unwrap(), "--trace"]);
        assert_eq!(code, 0);
        assert!(output.contains("cycle    1"), "{output}");
        assert!(output.contains("stepx1"), "{output}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn auto_ccc_runs_on_partitioned_matchers_and_warns_otherwise() {
        let f = temp_file(PROGRAM);
        // Partitioned matcher: no warning, identical result.
        let (code, output) = cli(&[
            "run",
            f.to_str().unwrap(),
            "--matcher",
            "prete:2",
            "--auto-ccc",
            "1",
        ]);
        assert_eq!(code, 0, "{output}");
        assert!(!output.contains("warning"), "{output}");
        assert!(output.contains("3 firings in 3 cycles"), "{output}");
        // Monolithic matcher: the flag is inert and says so.
        let (code, output) = cli(&["run", f.to_str().unwrap(), "--auto-ccc"]);
        assert_eq!(code, 0, "{output}");
        assert!(
            output.contains("warning: --auto-ccc has no effect"),
            "{output}"
        );
        assert!(output.contains("3 firings in 3 cycles"), "{output}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn cycle_limit_exit_code() {
        let f = temp_file(
            "(literalize n v)
             (wm (n ^v 0))
             (p forever (n ^v <x>) --> (modify 1 ^v (+ <x> 1)))",
        );
        let (code, output) = cli(&["run", f.to_str().unwrap(), "--max-cycles", "7"]);
        assert_eq!(code, 3, "{output}");
        assert!(output.contains("cycle limit"), "{output}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn check_reports_ok_and_errors() {
        let good = temp_file(PROGRAM);
        let (code, output) = cli(&["check", good.to_str().unwrap()]);
        assert_eq!(code, 0);
        assert!(output.contains("1 rules"), "{output}");
        assert!(output.contains("1 initial facts"), "{output}");
        std::fs::remove_file(good).ok();

        let bad = temp_file("(p broken (ghost) --> (halt))");
        let (code, output) = cli(&["check", bad.to_str().unwrap()]);
        assert_eq!(code, 1);
        assert!(output.contains("unknown class"), "{output}");
        std::fs::remove_file(bad).ok();
    }

    #[test]
    fn fmt_roundtrips() {
        let f = temp_file(PROGRAM);
        let (code, formatted) = cli(&["fmt", f.to_str().unwrap()]);
        assert_eq!(code, 0);
        // the formatted output must itself compile
        assert!(
            parulel_lang::compile_with_wm(&formatted).is_ok(),
            "{formatted}"
        );
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn missing_file_and_bad_args() {
        let (code, output) = cli(&["run", "/no/such/file.pll"]);
        assert_eq!(code, 1);
        assert!(output.contains("cannot read"));
        let (code, output) = cli(&["run", "x", "--warp", "9"]);
        assert_eq!(code, 2);
        assert!(output.contains("USAGE"), "{output}");
        let (code, _) = cli(&["--help"]);
        assert_eq!(code, 0);
    }

    #[test]
    fn budget_trip_reports_structured_error() {
        let f = temp_file(
            "(literalize n v)
             (wm (n ^v 0))
             (p grow (n ^v <x>) --> (make n ^v (+ <x> 1)))",
        );
        let (code, output) = cli(&["run", f.to_str().unwrap(), "--max-wm", "4"]);
        assert_eq!(code, 1, "{output}");
        assert!(
            output.contains("working memory budget exceeded at cycle"),
            "{output}"
        );
        let (code, output) = cli(&["run", f.to_str().unwrap(), "--max-cs", "0"]);
        assert_eq!(code, 1, "{output}");
        assert!(
            output.contains("conflict-set budget exceeded at cycle 1") && output.contains("grow"),
            "{output}"
        );
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn checkpoint_and_resume_roundtrip_through_files() {
        let f = temp_file(
            "(literalize count n)
             (wm (count ^n 0))
             (p step (count ^n <n>) (test (< <n> 6)) --> (modify 1 ^n (+ <n> 1)))",
        );
        let mut snap_path = std::env::temp_dir();
        snap_path.push(format!("parulel-cli-test-{}.snap", std::process::id()));
        let snap = snap_path.to_str().unwrap();

        // Run the first 2 cycles only, writing a checkpoint.
        let (code, output) = cli(&[
            "run",
            f.to_str().unwrap(),
            "--max-cycles",
            "2",
            "--checkpoint",
            snap,
        ]);
        assert_eq!(code, 3, "{output}"); // cycle limit
        assert!(output.contains("checkpoint written"), "{output}");
        assert!(output.contains("(cycle 2)"), "{output}");

        // Resume and finish: 4 more firings, same final WM as a full run.
        let (code, output) = cli(&["run", f.to_str().unwrap(), "--resume", snap, "--dump-wm"]);
        assert_eq!(code, 0, "{output}");
        assert!(output.contains("4 firings in 4 cycles"), "{output}");
        assert!(output.contains("(count ^n 6)"), "{output}");

        // A corrupt snapshot is rejected cleanly.
        std::fs::write(&snap_path, b"garbage").unwrap();
        let (code, output) = cli(&["run", f.to_str().unwrap(), "--resume", snap]);
        assert_eq!(code, 1);
        assert!(output.contains("not a snapshot"), "{output}");

        std::fs::remove_file(&snap_path).ok();
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn serial_checkpoint_and_resume_roundtrip_through_files() {
        // Regression (engine unification): these flags were a hard CLI
        // error with --engine lex/mea before the serial path was cut
        // over to the unified core. They must now round-trip exactly
        // like the parallel test above.
        let f = temp_file(
            "(literalize count n)
             (wm (count ^n 0))
             (p step (count ^n <n>) (test (< <n> 6)) --> (modify 1 ^n (+ <n> 1)))",
        );
        let mut snap_path = std::env::temp_dir();
        snap_path.push(format!("parulel-cli-test-serial-{}.snap", std::process::id()));
        let snap = snap_path.to_str().unwrap();

        // Run the first 2 cycles only, writing a checkpoint (also
        // exercising --checkpoint-every on the serial path).
        let (code, output) = cli(&[
            "run",
            f.to_str().unwrap(),
            "--engine",
            "lex",
            "--max-cycles",
            "2",
            "--checkpoint-every",
            "1",
            "--checkpoint",
            snap,
        ]);
        assert_eq!(code, 3, "{output}"); // cycle limit
        assert!(output.contains("checkpoint written"), "{output}");
        assert!(output.contains("(cycle 2)"), "{output}");

        // Resume and finish: 4 more firings, same final WM as a full run.
        let (code, output) = cli(&[
            "run",
            f.to_str().unwrap(),
            "--engine",
            "lex",
            "--resume",
            snap,
            "--dump-wm",
        ]);
        assert_eq!(code, 0, "{output}");
        assert!(output.contains("4 firings in 4 cycles"), "{output}");
        assert!(output.contains("(count ^n 6)"), "{output}");

        // Resuming under a different policy works but says so.
        let (code, output) = cli(&["run", f.to_str().unwrap(), "--resume", snap]);
        assert_eq!(code, 0, "{output}");
        assert!(
            output.contains("captured under policy 'select-one-lex'"),
            "{output}"
        );

        std::fs::remove_file(&snap_path).ok();
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn serial_engine_warns_when_guard_or_metas_are_dropped() {
        // --guard with a select-one policy is inert: the run proceeds
        // but a one-line warning says the flag did nothing.
        let f = temp_file(PROGRAM);
        let (code, output) = cli(&[
            "run",
            f.to_str().unwrap(),
            "--engine",
            "mea",
            "--guard",
            "ww",
        ]);
        assert_eq!(code, 0, "{output}");
        assert!(
            output.contains("warning: --guard is ignored by --engine lex/mea"),
            "{output}"
        );
        // Same flags under fire-all: no warning.
        let (code, output) = cli(&["run", f.to_str().unwrap(), "--guard", "ww"]);
        assert_eq!(code, 0, "{output}");
        assert!(!output.contains("warning"), "{output}");
        std::fs::remove_file(f).ok();

        // A program with meta-rules run under select-one: the engine
        // pushes the dropped-meta-rules warning onto the run log, which
        // the CLI prints with the rest of the log.
        let f = temp_file(
            "(literalize a v)
             (wm (a ^v 1) (a ^v 2))
             (p r (a ^v <x>) --> (remove 1))
             (mp keep-max (inst r (a ^v <x>)) (inst r (a ^v <y>))
                 (test (< <x> <y>)) --> (redact 1))",
        );
        let (code, output) = cli(&["run", f.to_str().unwrap(), "--engine", "lex"]);
        assert_eq!(code, 0, "{output}");
        assert!(
            output.contains("warning: select-one-lex ignores the program's 1 meta-rule(s)"),
            "{output}"
        );
        let (code, output) = cli(&["run", f.to_str().unwrap()]);
        assert_eq!(code, 0, "{output}");
        assert!(!output.contains("warning"), "{output}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn timeout_flag_aborts_with_structured_error() {
        let f = temp_file(
            "(literalize n v)
             (wm (n ^v 0))
             (p forever (n ^v <x>) --> (modify 1 ^v (+ <x> 1)))",
        );
        let (code, output) = cli(&["run", f.to_str().unwrap(), "--timeout", "0"]);
        assert_eq!(code, 1, "{output}");
        assert!(output.contains("timeout at cycle 1"), "{output}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn runtime_error_is_reported() {
        let f = temp_file(
            "(literalize n v)
             (wm (n ^v 1))
             (p crash (n ^v <x>) --> (make n ^v (// <x> 0)) (remove 1))",
        );
        let (code, output) = cli(&["run", f.to_str().unwrap()]);
        assert_eq!(code, 1);
        assert!(output.contains("division by zero"), "{output}");
        std::fs::remove_file(f).ok();
    }

    fn temp_out(suffix: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("parulel-cli-test-{}-{suffix}", std::process::id()));
        path
    }

    #[test]
    fn metrics_out_writes_parseable_json() {
        let f = temp_file(PROGRAM);
        let mpath = temp_out("metrics.json");
        let m = mpath.to_str().unwrap();
        let (code, output) = cli(&["run", f.to_str().unwrap(), "--metrics-out", m, "--stats"]);
        assert_eq!(code, 0, "{output}");
        assert!(output.contains("metrics written to"), "{output}");
        assert!(output.contains("matcher rete | shards 1"), "{output}");
        let doc =
            parulel_engine::Json::parse(&std::fs::read_to_string(&mpath).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(|j| j.as_str()),
            Some("parulel-metrics/v1")
        );
        assert_eq!(doc.get("cycles").and_then(|j| j.as_f64()), Some(3.0));
        let rules = doc.get("rules").and_then(|j| j.as_arr()).unwrap();
        assert_eq!(rules.len(), 1, "{doc:?}");
        assert_eq!(rules[0].get("rule").and_then(|j| j.as_str()), Some("step"));
        assert_eq!(rules[0].get("fired").and_then(|j| j.as_f64()), Some(3.0));
        std::fs::remove_file(&mpath).ok();
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn trace_file_writes_jsonl_even_on_budget_trip() {
        let f = temp_file(
            "(literalize n v)
             (wm (n ^v 0))
             (p grow (n ^v <x>) --> (make n ^v (+ <x> 1)))",
        );
        let tpath = temp_out("trace.jsonl");
        let t = tpath.to_str().unwrap();
        let (code, output) =
            cli(&["run", f.to_str().unwrap(), "--trace", t, "--max-wm", "4"]);
        assert_eq!(code, 1, "{output}"); // budget trips, but the trace lands
        assert!(output.contains("trace written to"), "{output}");
        let body = std::fs::read_to_string(&tpath).unwrap();
        let mut lines = body.lines();
        let header = parulel_engine::Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            header.get("schema").and_then(|j| j.as_str()),
            Some("parulel-trace/v1")
        );
        let events: Vec<parulel_engine::Json> = lines
            .map(|l| parulel_engine::Json::parse(l).unwrap())
            .collect();
        assert!(!events.is_empty());
        assert!(
            events.iter().any(|e| {
                e.get("ev").and_then(|j| j.as_str()) == Some("budget")
                    && e.get("kind").and_then(|j| j.as_str()) == Some("wm")
            }),
            "{body}"
        );
        std::fs::remove_file(&tpath).ok();
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn unwritable_metrics_sink_fails_the_run() {
        let f = temp_file(PROGRAM);
        let (code, output) = cli(&[
            "run",
            f.to_str().unwrap(),
            "--metrics-out",
            "/no/such/dir/metrics.json",
        ]);
        assert_eq!(code, 1, "{output}");
        assert!(output.contains("cannot write"), "{output}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn command_parse_is_reexported() {
        // smoke: the library surface exposes the arg parser
        assert!(matches!(
            Command::parse(&["help".to_string()]),
            Ok(Command::Help)
        ));
    }

    #[test]
    fn serve_flags_map_onto_the_server_config() {
        let args: Vec<String> = [
            "serve",
            "--max-sessions",
            "3",
            "--inject-queue",
            "17",
            "--max-cycles",
            "99",
            "--metrics",
            "off",
            "--max-wm",
            "1000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let Ok(Command::Serve(opts)) = Command::parse(&args) else {
            panic!()
        };
        let config = crate::commands::server_config(&opts);
        assert_eq!(config.max_sessions, 3);
        assert_eq!(config.inject_queue, 17);
        assert_eq!(config.max_cycles, 99);
        assert_eq!(config.metrics, parulel_engine::MetricsLevel::Off);
        assert_eq!(config.default_budgets.max_wm, Some(1000));
        assert_eq!(config.default_budgets.timeout, None);
    }

    #[test]
    fn serve_over_a_unix_socket_answers_ping_and_shuts_down() {
        use std::io::{BufRead, BufReader, Write as _};
        use std::os::unix::net::UnixStream;

        let mut path = std::env::temp_dir();
        path.push(format!("parulel-cli-serve-{}.sock", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let daemon = {
            let path_str = path_str.clone();
            std::thread::spawn(move || cli(&["serve", "--socket", &path_str]))
        };
        // The daemon binds asynchronously; poll for the socket file.
        let stream = {
            let mut tries = 0;
            loop {
                match UnixStream::connect(&path_str) {
                    Ok(s) => break s,
                    Err(_) if tries < 200 => {
                        tries += 1;
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(e) => panic!("connect {path_str}: {e}"),
                }
            }
        };
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for (frame, expect) in [
            (r#"{"op":"ping"}"#, r#"{"ok":true,"op":"ping"}"#),
            (
                r#"{"op":"shutdown"}"#,
                r#"{"ok":true,"op":"shutdown","sessions_closed":0}"#,
            ),
        ] {
            writer.write_all(frame.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            assert_eq!(response.trim_end(), expect);
        }
        let (code, output) = daemon.join().unwrap();
        assert_eq!(code, 0, "{output}");
        assert!(output.contains("listening on unix"), "{output}");
        assert!(!std::path::Path::new(&path_str).exists());
    }
}
