//! The machine model: replaying cycle profiles on P processing elements.

use crate::profile::CycleProfile;

/// Per-operation costs of the simulated machine, in nanoseconds.
///
/// Defaults are calibrated loosely from the reproduction's measured
/// single-core phase times (Table 3): a match op is a hash probe plus a
/// token touch (~100 ns), a fire op an RHS evaluation (~300 ns), a redact
/// op one meta candidate check (~80 ns); message costs are modeled on a
/// low-latency interconnect. Absolute values shift the curves, not their
/// shape — the tests pin the shape.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// One match operation (delta scan entry or join completion).
    pub match_op_ns: u64,
    /// One RHS evaluation.
    pub fire_op_ns: u64,
    /// One redact (meta candidate) operation — serial at the control PE.
    pub redact_op_ns: u64,
    /// Broadcasting one WM change to all PEs (pipelined: per change).
    pub broadcast_ns_per_wme: u64,
    /// Shipping one instantiation to / decision from the control PE.
    pub gather_ns_per_inst: u64,
    /// Fixed per-cycle synchronization cost (two barriers per cycle).
    pub barrier_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            match_op_ns: 100,
            fire_op_ns: 300,
            redact_op_ns: 80,
            broadcast_ns_per_wme: 50,
            gather_ns_per_inst: 120,
            barrier_ns: 2_000,
        }
    }
}

/// How rules are placed on PEs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Assignment {
    /// Rule *i* on PE *i mod P* (what the real partitioned matcher does).
    RoundRobin,
    /// Longest-processing-time-first over total per-rule work — the
    /// balanced placement that copy-and-constrain tries to make possible
    /// by splitting outsized rules.
    Lpt,
}

/// Result of one simulated run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// PEs simulated.
    pub workers: usize,
    /// Predicted total time.
    pub total_ns: u64,
    /// Time in perfectly-parallel phases (match + fire makespans).
    pub parallel_ns: u64,
    /// Time in serial phases (broadcast, gather, redact, barriers).
    pub serial_ns: u64,
    /// Mean ratio of busiest-PE work to average work in the match phase
    /// (1.0 = perfectly balanced).
    pub imbalance: f64,
}

/// Assigns rules to PEs, returning `pe_of[rule]`.
fn assign(total_work: &[u64], workers: usize, how: Assignment) -> Vec<usize> {
    let n = total_work.len();
    let workers = workers.max(1);
    match how {
        Assignment::RoundRobin => (0..n).map(|i| i % workers).collect(),
        Assignment::Lpt => {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(total_work[i]));
            let mut load = vec![0u64; workers];
            let mut pe_of = vec![0usize; n];
            for i in order {
                let (pe, _) = load
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, l)| *l)
                    .expect("workers >= 1");
                pe_of[i] = pe;
                load[pe] += total_work[i];
            }
            pe_of
        }
    }
}

/// Replays `profiles` on a `workers`-PE machine under `cost`.
pub fn simulate(
    profiles: &[CycleProfile],
    cost: &CostModel,
    workers: usize,
    how: Assignment,
) -> SimOutcome {
    let workers = workers.max(1);
    let num_rules = profiles
        .first()
        .map(|p| p.match_ops_per_rule.len())
        .unwrap_or(0);
    // Placement is static for a run: use total per-rule work.
    let mut total_per_rule = vec![0u64; num_rules];
    for p in profiles {
        for (r, ops) in p.match_ops_per_rule.iter().enumerate() {
            total_per_rule[r] += ops + p.fire_ops_per_rule[r];
        }
    }
    let pe_of = assign(&total_per_rule, workers, how);

    let mut total_ns = 0u64;
    let mut parallel_ns = 0u64;
    let mut serial_ns = 0u64;
    let mut imbalance_sum = 0f64;
    let mut imbalance_cycles = 0u32;
    for p in profiles {
        // Phase 1 (serial): broadcast the delta.
        let broadcast = p.delta * cost.broadcast_ns_per_wme;
        // Phase 2 (parallel): match makespan over PEs.
        let mut match_load = vec![0u64; workers];
        for (r, ops) in p.match_ops_per_rule.iter().enumerate() {
            match_load[pe_of[r]] += ops * cost.match_op_ns;
        }
        let match_makespan = match_load.iter().copied().max().unwrap_or(0);
        let match_total: u64 = match_load.iter().sum();
        if match_total > 0 {
            let avg = match_total as f64 / workers as f64;
            if avg > 0.0 {
                imbalance_sum += match_makespan as f64 / avg;
                imbalance_cycles += 1;
            }
        }
        // Phase 3 (serial): gather + redact at the control PE.
        let gather = p.gathered * cost.gather_ns_per_inst;
        let redact = p.redact_ops * cost.redact_op_ns;
        // Phase 4 (parallel): fire makespan.
        let mut fire_load = vec![0u64; workers];
        for (r, ops) in p.fire_ops_per_rule.iter().enumerate() {
            fire_load[pe_of[r]] += ops * cost.fire_op_ns;
        }
        let fire_makespan = fire_load.iter().copied().max().unwrap_or(0);

        let serial = broadcast + gather + redact + cost.barrier_ns;
        let parallel = match_makespan + fire_makespan;
        total_ns += serial + parallel;
        serial_ns += serial;
        parallel_ns += parallel;
    }
    SimOutcome {
        workers,
        total_ns,
        parallel_ns,
        serial_ns,
        imbalance: if imbalance_cycles == 0 {
            1.0
        } else {
            imbalance_sum / imbalance_cycles as f64
        },
    }
}

/// Predicted speedup (vs 1 PE) for each worker count.
pub fn speedup_curve(
    profiles: &[CycleProfile],
    cost: &CostModel,
    workers: &[usize],
    how: Assignment,
) -> Vec<(usize, f64, SimOutcome)> {
    let base = simulate(profiles, cost, 1, how).total_ns.max(1);
    workers
        .iter()
        .map(|&w| {
            let out = simulate(profiles, cost, w, how);
            (w, base as f64 / out.total_ns.max(1) as f64, out)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic profile: `rules` equally-loaded rules, `cycles` cycles.
    fn flat_profiles(rules: usize, cycles: usize, ops: u64) -> Vec<CycleProfile> {
        (0..cycles)
            .map(|_| CycleProfile {
                delta: 4,
                match_ops_per_rule: vec![ops; rules],
                gathered: rules as u64,
                redact_ops: rules as u64,
                fire_ops_per_rule: vec![1; rules],
            })
            .collect()
    }

    #[test]
    fn one_worker_is_the_sum() {
        let p = flat_profiles(4, 3, 100);
        let out = simulate(&p, &CostModel::default(), 1, Assignment::RoundRobin);
        assert_eq!(out.parallel_ns + out.serial_ns, out.total_ns);
        assert!((out.imbalance - 1.0).abs() < 1e-9, "{}", out.imbalance);
    }

    #[test]
    fn speedup_is_monotone_and_bounded_by_rules() {
        let p = flat_profiles(8, 5, 10_000);
        let curve = speedup_curve(
            &p,
            &CostModel::default(),
            &[1, 2, 4, 8, 16],
            Assignment::RoundRobin,
        );
        let speedups: Vec<f64> = curve.iter().map(|(_, s, _)| *s).collect();
        assert!((speedups[0] - 1.0).abs() < 1e-9);
        for w in speedups.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{speedups:?}");
        }
        // 8 equal rules: 8 and 16 PEs give the same parallel time
        assert!((speedups[4] - speedups[3]).abs() / speedups[3] < 0.01, "{speedups:?}");
        // real speedup was achieved
        assert!(speedups[3] > 4.0, "{speedups:?}");
    }

    #[test]
    fn hot_rule_caps_speedup_until_lpt_helps_the_rest() {
        // one rule carries 90% of the work
        let mut p = flat_profiles(8, 4, 100);
        for prof in &mut p {
            prof.match_ops_per_rule[0] = 50_000;
        }
        let rr = speedup_curve(&p, &CostModel::default(), &[8], Assignment::RoundRobin);
        // the hot rule's PE dominates: speedup well under 2
        assert!(rr[0].1 < 2.0, "{:?}", rr[0].1);
        assert!(rr[0].2.imbalance > 3.0, "{}", rr[0].2.imbalance);
        // LPT can't split the hot rule either (that's copy-and-constrain's
        // job), but it must not be worse than round-robin
        let lpt = speedup_curve(&p, &CostModel::default(), &[8], Assignment::Lpt);
        assert!(lpt[0].1 >= rr[0].1 - 1e-9);
    }

    #[test]
    fn splitting_the_hot_rule_restores_scaling() {
        // model copy-and-constrain k=8: the 50k-op rule becomes 8 rules of
        // 6250 ops
        let mut hot = flat_profiles(8, 4, 100);
        for prof in &mut hot {
            prof.match_ops_per_rule[0] = 50_000;
        }
        let mut split = flat_profiles(15, 4, 100);
        for prof in &mut split {
            for r in 0..8 {
                prof.match_ops_per_rule[r] = 6_250;
            }
        }
        let cost = CostModel::default();
        let before = simulate(&hot, &cost, 8, Assignment::Lpt);
        let after = simulate(&split, &cost, 8, Assignment::Lpt);
        assert!(
            after.total_ns * 2 < before.total_ns,
            "split {} vs hot {}",
            after.total_ns,
            before.total_ns
        );
    }

    #[test]
    fn amdahl_serial_fraction_bounds_speedup() {
        // huge serial redact load, tiny parallel work
        let p = vec![CycleProfile {
            delta: 0,
            match_ops_per_rule: vec![10; 4],
            gathered: 0,
            redact_ops: 1_000_000,
            fire_ops_per_rule: vec![0; 4],
        }];
        let curve = speedup_curve(
            &p,
            &CostModel::default(),
            &[1, 64],
            Assignment::RoundRobin,
        );
        assert!(curve[1].1 < 1.01, "redact is serial: {:?}", curve[1].1);
    }

    #[test]
    fn lpt_balances_unequal_rules_better_than_round_robin() {
        // rule works 8,1,1,1,1,1,1,1 on 2 PEs: RR puts 8+1+1+1 on PE0 (11)
        // vs 4 on PE1; LPT gives 8 vs 7.
        let profiles = vec![CycleProfile {
            delta: 0,
            match_ops_per_rule: vec![8_000, 1_000, 1_000, 1_000, 1_000, 1_000, 1_000, 1_000],
            gathered: 0,
            redact_ops: 0,
            fire_ops_per_rule: vec![0; 8],
        }];
        let cost = CostModel {
            barrier_ns: 0,
            ..CostModel::default()
        };
        let rr = simulate(&profiles, &cost, 2, Assignment::RoundRobin);
        let lpt = simulate(&profiles, &cost, 2, Assignment::Lpt);
        assert!(lpt.total_ns < rr.total_ns, "{} vs {}", lpt.total_ns, rr.total_ns);
    }

    #[test]
    fn empty_profiles_are_fine() {
        let out = simulate(&[], &CostModel::default(), 4, Assignment::Lpt);
        assert_eq!(out.total_ns, 0);
        assert_eq!(out.imbalance, 1.0);
    }
}
