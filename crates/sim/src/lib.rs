//! # parulel-sim
//!
//! An analytic simulator of the parallel hardware the PARULEL paper ran
//! on and this reproduction does not have.
//!
//! The 1991 evaluation used a message-passing production-system machine
//! (the DADO lineage): *P* processing elements each own a subset of the
//! rule nets; every cycle the working-memory delta is broadcast, the PEs
//! update their nets in parallel, instantiations are gathered at a control
//! processor that runs redaction, and the surviving set is fired in
//! parallel again. On a single-core container the real rayon-based engine
//! cannot show that scaling — so, per the reproduction's substitution
//! rule, this crate *models* it:
//!
//! 1. [`profile::profile_run`] executes a workload on the **real** engine
//!    and extracts one [`CycleProfile`] per cycle: how much match work
//!    each rule contributed, how wide the conflict set was, how much was
//!    redacted, how many instantiations fired.
//! 2. [`machine::simulate`] replays those profiles on a parameterized
//!    [`CostModel`] of the machine — per-operation costs for match, fire,
//!    redact, plus broadcast/gather latencies and a per-cycle barrier —
//!    with rules assigned to PEs round-robin or by LPT (longest
//!    processing time first, the load-balanced assignment
//!    copy-and-constrain aims to enable).
//! 3. [`machine::speedup_curve`] sweeps PE counts, yielding the Figure 1b
//!    series: predicted speedup, its Amdahl ceiling (the serial
//!    redact/apply fraction), and the per-cycle load imbalance.
//!
//! The model is deliberately simple — linear costs, perfect overlap
//! inside a phase, no contention — i.e. an *upper-bound* machine. What it
//! preserves from the paper's setting is the **shape**: speedup saturates
//! at the hot rule's share of match work unless the rule is split
//! (copy-and-constrain), and the serial redact phase bounds everything
//! (Amdahl), which is why meta-rule evaluation must stay cheap.

#![warn(missing_docs)]

pub mod machine;
pub mod profile;

pub use machine::{simulate, speedup_curve, Assignment, CostModel, SimOutcome};
pub use profile::{profile_run, CycleProfile};
