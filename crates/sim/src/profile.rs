//! Extracting per-cycle work profiles from a real engine run.

use parulel_core::{Program, WorkingMemory};
use parulel_engine::{Engine, EngineError, EngineOptions};

/// The work one PARULEL cycle performed, in abstract operations.
///
/// Match work is attributed per rule (the unit of distribution on the
/// simulated machine): each rule pays one delta-scan op per changed WME
/// (alpha filtering is per-net on a broadcast machine) plus a join op per
/// instantiation of that rule that entered the conflict set this cycle.
#[derive(Clone, Debug)]
pub struct CycleProfile {
    /// WM changes applied at the start of this cycle (previous cycle's
    /// merged delta; the initial seed for cycle 1).
    pub delta: u64,
    /// Match operations attributed to each rule (indexed by `RuleId`).
    pub match_ops_per_rule: Vec<u64>,
    /// Instantiations shipped to the control processor.
    pub gathered: u64,
    /// Redaction work at the control processor (meta matching ops).
    pub redact_ops: u64,
    /// Instantiations fired (RHS evaluations, distributed per rule).
    pub fire_ops_per_rule: Vec<u64>,
}

impl CycleProfile {
    /// Total match ops across rules.
    pub fn match_ops(&self) -> u64 {
        self.match_ops_per_rule.iter().sum()
    }

    /// Total fire ops across rules.
    pub fn fire_ops(&self) -> u64 {
        self.fire_ops_per_rule.iter().sum()
    }
}

/// Runs `program` on the real engine (with tracing) and derives one
/// [`CycleProfile`] per executed cycle.
///
/// Attribution model:
/// * every rule scans the whole broadcast delta: `delta` ops each;
/// * a rule that fired `n` instantiations this cycle did at least `n`
///   join completions: `JOIN_WEIGHT * n` ops (fired counts are the
///   observable per-rule signal the engine exposes; redacted
///   instantiations are charged to the rule via the eligible surplus,
///   spread proportionally);
/// * redaction costs `eligible * rounds` control-processor ops;
/// * every fired instantiation is one fire op on its owning rule's PE.
pub fn profile_run(
    program: &Program,
    wm: WorkingMemory,
    opts: EngineOptions,
) -> Result<Vec<CycleProfile>, EngineError> {
    let opts = EngineOptions {
        trace: true,
        ..opts
    };
    let initial_delta = wm.len() as u64;
    let mut engine = Engine::new(program, wm, opts);
    engine.run()?;
    let num_rules = program.rules().len();

    let mut profiles = Vec::new();
    let mut prev_delta = initial_delta;
    for trace in engine.traces() {
        let mut match_ops_per_rule = vec![prev_delta; num_rules];
        let mut fire_ops_per_rule = vec![0u64; num_rules];
        let fired_total: usize = trace.fired_rules.iter().map(|(_, n)| n).sum();
        for (name, n) in &trace.fired_rules {
            let rid = program
                .rule_by_name(program.interner.intern(name))
                .expect("traced rule exists");
            const JOIN_WEIGHT: u64 = 4;
            // Joins for fired insts, plus this rule's proportional share
            // of the redacted surplus (eligible - fired).
            let surplus = (trace.eligible.saturating_sub(fired_total)) as u64;
            let share = if fired_total == 0 {
                0
            } else {
                surplus * (*n as u64) / fired_total as u64
            };
            match_ops_per_rule[rid.index()] += JOIN_WEIGHT * (*n as u64 + share);
            fire_ops_per_rule[rid.index()] += *n as u64;
        }
        let redact_rounds = 1 + trace.redacted_meta.min(4) as u64;
        profiles.push(CycleProfile {
            delta: prev_delta,
            match_ops_per_rule,
            gathered: trace.eligible as u64,
            redact_ops: trace.eligible as u64 * redact_rounds,
            fire_ops_per_rule,
        });
        prev_delta = (trace.adds + trace.removes) as u64;
    }
    Ok(profiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parulel_core::Value;

    fn counter() -> (Program, WorkingMemory) {
        let p = parulel_lang::compile(
            "(literalize count n)
             (p step (count ^n <n>) (test (< <n> 4)) --> (modify 1 ^n (+ <n> 1)))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let c = p.classes.id_of(p.interner.intern("count")).unwrap();
        wm.insert(c, vec![Value::Int(0)]);
        (p, wm)
    }

    #[test]
    fn one_profile_per_cycle() {
        let (p, wm) = counter();
        let profiles = profile_run(&p, wm, EngineOptions::default()).unwrap();
        assert_eq!(profiles.len(), 4);
        // every cycle fires exactly one instantiation of rule 0
        for prof in &profiles {
            assert_eq!(prof.fire_ops(), 1);
            assert_eq!(prof.fire_ops_per_rule[0], 1);
            assert!(prof.match_ops_per_rule[0] > 0);
        }
        // cycle 1's delta is the seed (1 wme); later cycles see the
        // modify's remove+add (2 changes)
        assert_eq!(profiles[0].delta, 1);
        assert_eq!(profiles[1].delta, 2);
    }

    #[test]
    fn match_work_lands_on_the_firing_rule() {
        let p = parulel_lang::compile(
            "(literalize a x)
             (literalize b x)
             (p ra (a ^x <v>) --> (remove 1))
             (p rb (b ^x <v>) --> (remove 1))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new(&p.classes);
        let a = p.classes.id_of(p.interner.intern("a")).unwrap();
        for i in 0..6 {
            wm.insert(a, vec![Value::Int(i)]);
        }
        let profiles = profile_run(&p, wm, EngineOptions::default()).unwrap();
        assert_eq!(profiles.len(), 1);
        let prof = &profiles[0];
        // both rules scan the delta, but only ra has join+fire work
        assert!(prof.match_ops_per_rule[0] > prof.match_ops_per_rule[1]);
        assert_eq!(prof.fire_ops_per_rule, vec![6, 0]);
        assert_eq!(prof.gathered, 6);
    }
}
