//! Fault-injection harness (feature `fault-inject`, enabled for this
//! test build via the root crate's dev-dependencies): deliberately
//! sabotage a run at a chosen cycle and check that the engine reports a
//! structured [`EngineError`] — naming the rule and cycle — instead of
//! aborting the process, and that the trip checkpoint it leaves behind
//! describes a consistent pre-fault state.

use parulel::engine::faults::{FaultPlan, FaultPoint};
use parulel::prelude::*;

/// A rule that counts to 10 and quiesces: one firing per cycle, so
/// "cycle k" and "firing k" coincide and fault timing is easy to reason
/// about, and every undisturbed run converges on the same final WM.
const COUNTER: &str = "
(literalize count n)
(p step (count ^n <n>) (test (< <n> 10)) --> (modify 1 ^n (+ <n> 1)))
";

fn counter_engine(plan: FaultPlan) -> ParallelEngine {
    let (p, wm) = parulel::lang::compile_with_wm(&format!("{COUNTER}\n(wm (count ^n 0))"))
        .expect("counter program compiles");
    ParallelEngine::new(
        &p,
        wm,
        EngineOptions {
            max_cycles: 50,
            faults: plan,
            ..Default::default()
        },
    )
}

#[test]
fn injected_rhs_panic_yields_structured_error_and_process_survives() {
    let mut e = counter_engine(FaultPlan {
        rhs_panic: Some(FaultPoint::new(3, "step")),
        ..FaultPlan::none()
    });
    // The panic is caught at the firing boundary: run() returns Err, the
    // test process (this one) is alive to inspect it.
    let err = e.run().unwrap_err();
    match &err {
        EngineError::RhsPanic { rule, payload } => {
            assert_eq!(rule, "step");
            assert!(
                payload.contains("cycle 3"),
                "payload should carry the cycle: {payload}"
            );
        }
        other => panic!("expected RhsPanic, got {other}"),
    }
    // Two clean cycles completed before the sabotaged third.
    assert_eq!(e.stats().cycles, 2);
    // The trip checkpoint captures the last consistent boundary, so the
    // run can be restarted from just before the fault.
    let snap = e.latest_checkpoint().expect("trip leaves a checkpoint");
    assert_eq!(snap.cycle, 2);
}

#[test]
fn resuming_past_an_injected_fault_completes_the_run() {
    let mut sabotaged = counter_engine(FaultPlan {
        rhs_panic: Some(FaultPoint::new(3, "step")),
        ..FaultPlan::none()
    });
    sabotaged.run().unwrap_err();
    let snap = sabotaged.latest_checkpoint().unwrap().clone();

    // Resume with the fault cleared: the run finishes as if the fault
    // had never fired, and matches an undisturbed run.
    let (p, wm) = parulel::lang::compile_with_wm(&format!("{COUNTER}\n(wm (count ^n 0))")).unwrap();
    let opts = EngineOptions {
        max_cycles: 50,
        ..Default::default()
    };
    let mut resumed = ParallelEngine::resume(&p, &snap, opts.clone()).unwrap();
    resumed.run().unwrap();
    let mut undisturbed = ParallelEngine::new(&p, wm, opts);
    undisturbed.run().unwrap();
    assert_eq!(
        resumed.wm().sorted_snapshot(),
        undisturbed.wm().sorted_snapshot()
    );
}

#[test]
fn injected_rhs_eval_error_names_the_rule_and_cycle() {
    let mut e = counter_engine(FaultPlan {
        rhs_error: Some(FaultPoint::new(2, "step")),
        ..FaultPlan::none()
    });
    let err = e.run().unwrap_err();
    match &err {
        EngineError::RhsEval { rule, .. } => assert_eq!(rule, "step"),
        other => panic!("expected RhsEval, got {other}"),
    }
    assert_eq!(e.stats().cycles, 1);
}

#[test]
fn matcher_corruption_is_caught_by_the_audit_oracle() {
    let mut e = counter_engine(FaultPlan {
        corrupt_matcher_at: Some(2),
        audit_matcher: true,
        ..FaultPlan::none()
    });
    let err = e.run().unwrap_err();
    match &err {
        EngineError::MatcherCorrupt { cycle, detail } => {
            assert_eq!(*cycle, 2);
            assert!(
                detail.contains("step"),
                "detail should describe the spurious instantiation: {detail}"
            );
        }
        other => panic!("expected MatcherCorrupt, got {other}"),
    }
    // The audit fires before redaction and firing: cycle 2 never ran.
    assert_eq!(e.stats().cycles, 1);
}

#[test]
fn corruption_goes_unnoticed_without_the_audit_but_state_stays_consistent() {
    // Sanity check on the harness itself: the same corruption with the
    // oracle disabled is only visible through its effects. The phantom
    // WME duplicates a live one, and refraction has no entry for the
    // phantom key, so the duplicate instantiation fires — the run still
    // terminates and the process survives.
    let mut e = counter_engine(FaultPlan {
        corrupt_matcher_at: Some(2),
        audit_matcher: false,
        ..FaultPlan::none()
    });
    e.run().unwrap();
    assert!(e.stats().cycles >= 2);
}

#[test]
fn faults_against_other_rules_or_cycles_do_not_fire() {
    // A plan naming a rule that never fires (or a cycle past quiescence)
    // must leave the run untouched.
    let mut clean = counter_engine(FaultPlan::none());
    clean.run().unwrap();
    let want = clean.wm().sorted_snapshot();

    let mut miss = counter_engine(FaultPlan {
        rhs_panic: Some(FaultPoint::new(3, "no-such-rule")),
        rhs_error: Some(FaultPoint::new(9_999, "step")),
        ..FaultPlan::none()
    });
    miss.run().unwrap();
    assert_eq!(miss.wm().sorted_snapshot(), want);
}
