//! Fault-injection harness (feature `fault-inject`, enabled for this
//! test build via the root crate's dev-dependencies): deliberately
//! sabotage a run at a chosen cycle and check that the engine reports a
//! structured [`EngineError`] — naming the rule and cycle — instead of
//! aborting the process, and that the trip checkpoint it leaves behind
//! describes a consistent pre-fault state.

use parulel::engine::faults::{FaultPlan, FaultPoint};
use parulel::prelude::*;

/// A rule that counts to 10 and quiesces: one firing per cycle, so
/// "cycle k" and "firing k" coincide and fault timing is easy to reason
/// about, and every undisturbed run converges on the same final WM.
const COUNTER: &str = "
(literalize count n)
(p step (count ^n <n>) (test (< <n> 10)) --> (modify 1 ^n (+ <n> 1)))
";

fn counter_engine(plan: FaultPlan) -> ParallelEngine {
    counter_engine_with(FiringPolicy::fire_all(), plan)
}

/// Same counter workload through the unified core under any policy.
/// The fault hooks live in the policy-agnostic cycle driver, so every
/// test below must behave identically however the firing decision is
/// made.
fn counter_engine_with(policy: FiringPolicy, plan: FaultPlan) -> Engine {
    let (p, wm) = parulel::lang::compile_with_wm(&format!("{COUNTER}\n(wm (count ^n 0))"))
        .expect("counter program compiles");
    Engine::with_policy(
        &p,
        wm,
        policy,
        EngineOptions {
            max_cycles: 50,
            faults: plan,
            ..Default::default()
        },
    )
}

#[test]
fn injected_rhs_panic_yields_structured_error_and_process_survives() {
    let mut e = counter_engine(FaultPlan {
        rhs_panic: Some(FaultPoint::new(3, "step")),
        ..FaultPlan::none()
    });
    // The panic is caught at the firing boundary: run() returns Err, the
    // test process (this one) is alive to inspect it.
    let err = e.run().unwrap_err();
    match &err {
        EngineError::RhsPanic { rule, payload } => {
            assert_eq!(rule, "step");
            assert!(
                payload.contains("cycle 3"),
                "payload should carry the cycle: {payload}"
            );
        }
        other => panic!("expected RhsPanic, got {other}"),
    }
    // Two clean cycles completed before the sabotaged third.
    assert_eq!(e.stats().cycles, 2);
    // The trip checkpoint captures the last consistent boundary, so the
    // run can be restarted from just before the fault.
    let snap = e.latest_checkpoint().expect("trip leaves a checkpoint");
    assert_eq!(snap.cycle, 2);
}

#[test]
fn resuming_past_an_injected_fault_completes_the_run() {
    let mut sabotaged = counter_engine(FaultPlan {
        rhs_panic: Some(FaultPoint::new(3, "step")),
        ..FaultPlan::none()
    });
    sabotaged.run().unwrap_err();
    let snap = sabotaged.latest_checkpoint().unwrap().clone();

    // Resume with the fault cleared: the run finishes as if the fault
    // had never fired, and matches an undisturbed run.
    let (p, wm) = parulel::lang::compile_with_wm(&format!("{COUNTER}\n(wm (count ^n 0))")).unwrap();
    let opts = EngineOptions {
        max_cycles: 50,
        ..Default::default()
    };
    let mut resumed = ParallelEngine::resume(&p, &snap, opts.clone()).unwrap();
    resumed.run().unwrap();
    let mut undisturbed = ParallelEngine::new(&p, wm, opts);
    undisturbed.run().unwrap();
    assert_eq!(
        resumed.wm().sorted_snapshot(),
        undisturbed.wm().sorted_snapshot()
    );
}

#[test]
fn injected_rhs_eval_error_names_the_rule_and_cycle() {
    let mut e = counter_engine(FaultPlan {
        rhs_error: Some(FaultPoint::new(2, "step")),
        ..FaultPlan::none()
    });
    let err = e.run().unwrap_err();
    match &err {
        EngineError::RhsEval { rule, .. } => assert_eq!(rule, "step"),
        other => panic!("expected RhsEval, got {other}"),
    }
    assert_eq!(e.stats().cycles, 1);
}

#[test]
fn matcher_corruption_is_caught_by_the_audit_oracle() {
    let mut e = counter_engine(FaultPlan {
        corrupt_matcher_at: Some(2),
        audit_matcher: true,
        ..FaultPlan::none()
    });
    let err = e.run().unwrap_err();
    match &err {
        EngineError::MatcherCorrupt { cycle, detail } => {
            assert_eq!(*cycle, 2);
            assert!(
                detail.contains("step"),
                "detail should describe the spurious instantiation: {detail}"
            );
        }
        other => panic!("expected MatcherCorrupt, got {other}"),
    }
    // The audit fires before redaction and firing: cycle 2 never ran.
    assert_eq!(e.stats().cycles, 1);
}

#[test]
fn corruption_goes_unnoticed_without_the_audit_but_state_stays_consistent() {
    // Sanity check on the harness itself: the same corruption with the
    // oracle disabled is only visible through its effects. The phantom
    // WME duplicates a live one, and refraction has no entry for the
    // phantom key, so the duplicate instantiation fires — the run still
    // terminates and the process survives.
    let mut e = counter_engine(FaultPlan {
        corrupt_matcher_at: Some(2),
        audit_matcher: false,
        ..FaultPlan::none()
    });
    e.run().unwrap();
    assert!(e.stats().cycles >= 2);
}

#[test]
fn faults_against_other_rules_or_cycles_do_not_fire() {
    // A plan naming a rule that never fires (or a cycle past quiescence)
    // must leave the run untouched.
    let mut clean = counter_engine(FaultPlan::none());
    clean.run().unwrap();
    let want = clean.wm().sorted_snapshot();

    let mut miss = counter_engine(FaultPlan {
        rhs_panic: Some(FaultPoint::new(3, "no-such-rule")),
        rhs_error: Some(FaultPoint::new(9_999, "step")),
        ..FaultPlan::none()
    });
    miss.run().unwrap();
    assert_eq!(miss.wm().sorted_snapshot(), want);
}

#[test]
fn injected_panic_is_isolated_identically_under_select_one() {
    // Satellite: fault injection flows through the unified core, so a
    // SelectOne (OPS5) engine gets the same panic isolation, structured
    // error, and trip checkpoint as fire-all — previously the serial
    // engine had none of this machinery.
    for strategy in [Strategy::Lex, Strategy::Mea] {
        let mut e = counter_engine_with(
            FiringPolicy::SelectOne(strategy),
            FaultPlan {
                rhs_panic: Some(FaultPoint::new(3, "step")),
                ..FaultPlan::none()
            },
        );
        let err = e.run().unwrap_err();
        match &err {
            EngineError::RhsPanic { rule, payload } => {
                assert_eq!(rule, "step");
                assert!(payload.contains("cycle 3"), "{payload}");
            }
            other => panic!("expected RhsPanic, got {other}"),
        }
        assert_eq!(e.stats().cycles, 2, "{strategy:?}");
        let snap = e.latest_checkpoint().expect("trip leaves a checkpoint");
        assert_eq!(snap.cycle, 2);
        assert_eq!(snap.policy, FiringPolicy::SelectOne(strategy).tag());
    }
}

#[test]
fn budget_trips_fire_identically_for_both_policies() {
    // The counter adds no WMEs (modify = remove+add, net zero), so grow
    // working memory instead: one new WME per cycle under *either*
    // policy, because a single instantiation is eligible per cycle.
    const GROW: &str = "
    (literalize tick n)
    (p grow (tick ^n <n>) (test (< <n> 30)) --> (make tick ^n (+ <n> 1)))
    ";
    let policies = [
        FiringPolicy::fire_all(),
        FiringPolicy::SelectOne(Strategy::Lex),
        FiringPolicy::SelectOne(Strategy::Mea),
    ];
    let mut trips = Vec::new();
    for policy in policies {
        let (p, wm) =
            parulel::lang::compile_with_wm(&format!("{GROW}\n(wm (tick ^n 0))")).unwrap();
        let mut e = Engine::with_policy(
            &p,
            wm,
            policy,
            EngineOptions {
                budgets: Budgets {
                    max_wm: Some(5),
                    ..Budgets::unlimited()
                },
                ..Default::default()
            },
        );
        let err = e.run().unwrap_err();
        match &err {
            EngineError::WmBudget { cycle, size, .. } => {
                trips.push((*cycle, *size, e.stats().cycles))
            }
            other => panic!("expected WmBudget under {policy:?}, got {other}"),
        }
        // The trip checkpoint is consistent and tagged with the policy.
        let snap = e.latest_checkpoint().expect("budget trip checkpoints");
        assert_eq!(snap.policy, policy.tag());
    }
    // All three policies trip the same budget at the same cycle.
    assert_eq!(trips[0], trips[1]);
    assert_eq!(trips[1], trips[2]);
}

#[test]
fn zero_timeout_trips_before_cycle_one_for_both_policies() {
    use std::time::Duration;
    for policy in [
        FiringPolicy::fire_all(),
        FiringPolicy::SelectOne(Strategy::Lex),
    ] {
        let (p, wm) =
            parulel::lang::compile_with_wm(&format!("{COUNTER}\n(wm (count ^n 0))")).unwrap();
        let mut e = Engine::with_policy(
            &p,
            wm,
            policy,
            EngineOptions {
                budgets: Budgets {
                    timeout: Some(Duration::ZERO),
                    ..Budgets::unlimited()
                },
                ..Default::default()
            },
        );
        let err = e.run().unwrap_err();
        assert!(
            matches!(&err, EngineError::Timeout { cycle: 1, .. }),
            "expected Timeout at cycle 1 under {policy:?}, got {err}"
        );
        assert_eq!(e.stats().cycles, 0);
    }
}
