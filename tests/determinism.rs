//! Determinism guarantees: a PARULEL run is a pure function of
//! (program, initial WM, options) — independent of thread scheduling,
//! hash iteration order, and whether RHS evaluation ran in parallel.

use parulel::prelude::*;
use parulel::workloads::{self, Scenario};

fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(workloads::Closure::new(12, 20, 1)),
        Box::new(workloads::LabelProp::new(16, 20, 2)),
        Box::new(workloads::Seating::new(2, 6, 3)),
        Box::new(workloads::Market::new(12, 3, 4)),
        Box::new(workloads::Waltz::new(8, 4, 5)),
        Box::new(workloads::WaltzDb::new(3, 3, 3, 6)),
    ]
}

#[test]
fn identical_runs_are_byte_identical() {
    for s in scenarios() {
        let run = || {
            let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
            let out = e.run().unwrap();
            (
                out.cycles,
                out.firings,
                e.log().to_vec(),
                e.wm().sorted_snapshot(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "{} cycles differ", s.name());
        assert_eq!(a.1, b.1, "{} firings differ", s.name());
        assert_eq!(a.2, b.2, "{} logs differ", s.name());
        assert_eq!(a.3, b.3, "{} final WMs differ", s.name());
    }
}

/// Observability must be read-only: turning metrics collection on (at
/// any level) cannot change a single bit of the run — same cycles, same
/// firings, same log, same final working memory. Conversely, the default
/// `MetricsLevel::Off` run is exactly the uninstrumented hot path.
#[test]
fn metrics_collection_does_not_perturb_the_run() {
    for s in scenarios() {
        let run = |level: MetricsLevel| {
            let mut e = ParallelEngine::new(
                s.program(),
                s.initial_wm(),
                EngineOptions {
                    metrics: level,
                    ..Default::default()
                },
            );
            let out = e.run().unwrap();
            (
                out.cycles,
                out.firings,
                e.log().to_vec(),
                e.wm().sorted_snapshot(),
            )
        };
        let off = run(MetricsLevel::Off);
        for level in [MetricsLevel::Rules, MetricsLevel::Full] {
            let on = run(level);
            assert_eq!(off, on, "{} at {level:?} diverged from Off", s.name());
        }
    }
}

/// The per-rule counters must agree with the run totals the engine
/// already reports — firings sum to `Outcome::firings`, and every
/// observed peak is at least the final state's size.
#[test]
fn metrics_counters_are_consistent_with_run_totals() {
    for s in scenarios() {
        let mut e = ParallelEngine::new(
            s.program(),
            s.initial_wm(),
            EngineOptions {
                metrics: MetricsLevel::Full,
                ..Default::default()
            },
        );
        let out = e.run().unwrap();
        let m = e.metrics();
        let fired: u64 = m.per_rule.iter().map(|r| r.fired).sum();
        assert_eq!(fired, out.firings, "{}", s.name());
        let redacted: u64 = m.per_rule.iter().map(|r| r.redacted_meta).sum();
        assert_eq!(redacted, e.stats().redacted_meta, "{}", s.name());
        assert!(m.peak_wm >= e.wm().len(), "{}", s.name());
        assert!(
            m.peak_conflict_set >= e.stats().peak_eligible,
            "{}",
            s.name()
        );
    }
}

#[test]
fn parallel_and_sequential_fire_agree() {
    for s in scenarios() {
        let run = |parallel_fire: bool| {
            let mut e = ParallelEngine::new(
                s.program(),
                s.initial_wm(),
                EngineOptions {
                    parallel_fire,
                    ..Default::default()
                },
            );
            e.run().unwrap();
            (e.log().to_vec(), e.wm().sorted_snapshot())
        };
        assert_eq!(run(true), run(false), "{}", s.name());
    }
}

#[test]
fn worker_count_does_not_change_results() {
    for s in scenarios() {
        let run = |n: usize| {
            let mut e = ParallelEngine::new(
                s.program(),
                s.initial_wm(),
                EngineOptions {
                    matcher: MatcherKind::PartitionedRete(n),
                    ..Default::default()
                },
            );
            e.run().unwrap();
            e.wm().sorted_snapshot()
        };
        let one = run(1);
        for n in [2, 5, 16] {
            assert_eq!(run(n), one, "{} with {n} workers", s.name());
        }
    }
}

/// Checkpointing at cycle `k` and resuming from the serialized snapshot
/// must finish with exactly the WM, log, and cycle count of a run that
/// was never interrupted — for every workload and every interruption
/// point, including "before the first cycle" and "after quiescence".
#[test]
fn checkpoint_and_resume_match_uninterrupted_run() {
    for s in scenarios() {
        let mut full = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = full.run().unwrap();
        let reference = (out.cycles, full.log().to_vec(), full.wm().sorted_snapshot());

        for k in 0..=out.cycles {
            let mut head =
                ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
            for _ in 0..k {
                assert!(head.step().unwrap(), "{} stopped before cycle {k}", s.name());
            }
            // Round-trip through the wire format, then resume against a
            // freshly compiled program (as a separate process would).
            let bytes = head.checkpoint().to_bytes();
            let snap = Snapshot::from_bytes(&bytes).unwrap();
            let mut tail =
                ParallelEngine::resume(s.program(), &snap, EngineOptions::default()).unwrap();
            let rest = tail.run().unwrap();
            assert_eq!(
                snap.cycle + rest.cycles,
                reference.0,
                "{} resumed at {k}: cycle counts differ",
                s.name()
            );
            assert_eq!(
                tail.log(),
                &reference.1[..],
                "{} resumed at {k}: logs differ",
                s.name()
            );
            assert_eq!(
                tail.wm().sorted_snapshot(),
                reference.2,
                "{} resumed at {k}: final WMs differ",
                s.name()
            );
        }
    }
}

/// A resumed engine is a full citizen: checkpointing *it* mid-flight and
/// resuming again still converges on the uninterrupted result.
#[test]
fn chained_checkpoints_stay_deterministic() {
    for s in scenarios() {
        let mut full = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        full.run().unwrap();
        let want = full.wm().sorted_snapshot();

        let mut head =
            ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        head.step().unwrap();
        let mut mid =
            ParallelEngine::resume(s.program(), &head.checkpoint(), Default::default()).unwrap();
        mid.step().unwrap();
        let mut tail =
            ParallelEngine::resume(s.program(), &mid.checkpoint(), Default::default()).unwrap();
        tail.run().unwrap();
        assert_eq!(tail.wm().sorted_snapshot(), want, "{}", s.name());
    }
}

/// Pre-refactor behavioral lock-in for the engine-unification refactor.
///
/// These constants were captured from the two hand-written engines
/// *before* `SerialEngine`/`ParallelEngine` were folded into the single
/// `Engine` cycle kernel with pluggable firing policies. Every arm —
/// OPS5 select-one under LEX and MEA, and PARULEL fire-all — must
/// reproduce the exact `RunStats`, `Outcome` flags, and final working
/// memory (length + FNV-1a fingerprint of the canonical fact dump) the
/// old engines produced. Any drift here means the refactor changed
/// semantics, not just structure.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    cycles: u64,
    firings: u64,
    redacted_meta: u64,
    redacted_guard: u64,
    meta_rounds: u64,
    peak_eligible: usize,
    total_eligible: u64,
    adds: u64,
    removes: u64,
    halted: bool,
    quiescent: bool,
    hit_cycle_limit: bool,
    wm_len: usize,
    wm_fnv: u64,
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn observe(out: &Outcome, stats: &parulel::engine::RunStats, wm: &WorkingMemory) -> Golden {
    Golden {
        cycles: stats.cycles,
        firings: stats.firings,
        redacted_meta: stats.redacted_meta,
        redacted_guard: stats.redacted_guard,
        meta_rounds: stats.meta_rounds,
        peak_eligible: stats.peak_eligible,
        total_eligible: stats.total_eligible,
        adds: stats.adds,
        removes: stats.removes,
        halted: out.halted,
        quiescent: out.quiescent,
        hit_cycle_limit: out.hit_cycle_limit,
        wm_len: wm.len(),
        wm_fnv: fnv1a(&format!("{:?}", wm.canonical_facts())),
    }
}

#[rustfmt::skip]
fn goldens() -> Vec<(&'static str, &'static str, Golden)> {
    vec![
        ("closure(n=12,e=20)", "lex", Golden { cycles: 132, firings: 132, redacted_meta: 0, redacted_guard: 0, meta_rounds: 0, peak_eligible: 22, total_eligible: 1188, adds: 132, removes: 0, halted: false, quiescent: true, hit_cycle_limit: false, wm_len: 152, wm_fnv: 0x3c4ca7fa276198f8 }),
        ("closure(n=12,e=20)", "mea", Golden { cycles: 132, firings: 132, redacted_meta: 0, redacted_guard: 0, meta_rounds: 0, peak_eligible: 22, total_eligible: 1188, adds: 132, removes: 0, halted: false, quiescent: true, hit_cycle_limit: false, wm_len: 152, wm_fnv: 0x3c4ca7fa276198f8 }),
        ("closure(n=12,e=20)", "fire-all", Golden { cycles: 9, firings: 143, redacted_meta: 0, redacted_guard: 0, meta_rounds: 0, peak_eligible: 26, total_eligible: 143, adds: 143, removes: 0, halted: false, quiescent: true, hit_cycle_limit: false, wm_len: 163, wm_fnv: 0xb120feffc9927dcd }),
        ("labelprop(n=16,e=20)", "lex", Golden { cycles: 15, firings: 15, redacted_meta: 0, redacted_guard: 0, meta_rounds: 0, peak_eligible: 20, total_eligible: 194, adds: 15, removes: 15, halted: false, quiescent: true, hit_cycle_limit: false, wm_len: 56, wm_fnv: 0x321599bbd247b293 }),
        ("labelprop(n=16,e=20)", "mea", Golden { cycles: 17, firings: 17, redacted_meta: 0, redacted_guard: 0, meta_rounds: 0, peak_eligible: 20, total_eligible: 198, adds: 17, removes: 17, halted: false, quiescent: true, hit_cycle_limit: false, wm_len: 56, wm_fnv: 0x321599bbd247b293 }),
        ("labelprop(n=16,e=20)", "fire-all", Golden { cycles: 5, firings: 29, redacted_meta: 12, redacted_guard: 0, meta_rounds: 2, peak_eligible: 20, total_eligible: 41, adds: 29, removes: 29, halted: false, quiescent: true, hit_cycle_limit: false, wm_len: 56, wm_fnv: 0x321599bbd247b293 }),
        ("market(n=12x2,sym=3)", "lex", Golden { cycles: 6, firings: 6, redacted_meta: 0, redacted_guard: 0, meta_rounds: 0, peak_eligible: 25, total_eligible: 68, adds: 6, removes: 12, halted: false, quiescent: true, hit_cycle_limit: false, wm_len: 18, wm_fnv: 0xaedbce53855a77d6 }),
        ("market(n=12x2,sym=3)", "mea", Golden { cycles: 6, firings: 6, redacted_meta: 0, redacted_guard: 0, meta_rounds: 0, peak_eligible: 25, total_eligible: 74, adds: 6, removes: 12, halted: false, quiescent: true, hit_cycle_limit: false, wm_len: 18, wm_fnv: 0xaedbce53855a77d6 }),
        ("market(n=12x2,sym=3)", "fire-all", Golden { cycles: 3, firings: 5, redacted_meta: 33, redacted_guard: 0, meta_rounds: 3, peak_eligible: 25, total_eligible: 38, adds: 5, removes: 10, halted: false, quiescent: true, hit_cycle_limit: false, wm_len: 19, wm_fnv: 0xbbc86e6efffde22d }),
    ]
}

fn golden_scenario(name: &str) -> Box<dyn Scenario> {
    match name {
        "closure(n=12,e=20)" => Box::new(workloads::Closure::new(12, 20, 1)),
        "labelprop(n=16,e=20)" => Box::new(workloads::LabelProp::new(16, 20, 2)),
        "market(n=12x2,sym=3)" => Box::new(workloads::Market::new(12, 3, 4)),
        other => panic!("unknown golden scenario {other}"),
    }
}

#[test]
fn golden_lock_in_both_engines_and_all_strategies() {
    for (name, arm, want) in goldens() {
        let s = golden_scenario(name);
        let got = match arm {
            "lex" | "mea" => {
                let strategy = if arm == "lex" { Strategy::Lex } else { Strategy::Mea };
                let mut e = SerialEngine::new(
                    s.program(),
                    s.initial_wm(),
                    strategy,
                    EngineOptions::default(),
                );
                let out = e.run().unwrap();
                observe(&out, e.stats(), e.wm())
            }
            "fire-all" => {
                let mut e =
                    ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
                let out = e.run().unwrap();
                observe(&out, e.stats(), e.wm())
            }
            other => panic!("unknown arm {other}"),
        };
        assert_eq!(got, want, "{name}/{arm} drifted from pre-refactor behavior");

        // The compat constructors above are thin shims over the unified
        // core; driving it directly by policy must land on the same golden.
        let policy = parulel::engine::FiringPolicy::from_tag(match arm {
            "lex" => "select-one-lex",
            "mea" => "select-one-mea",
            _ => "fire-all",
        })
        .unwrap();
        let mut e = parulel::engine::Engine::with_policy(
            s.program(),
            s.initial_wm(),
            policy,
            EngineOptions::default(),
        );
        let out = e.run().unwrap();
        let direct = observe(&out, e.stats(), e.wm());
        assert_eq!(direct, want, "{name}/{arm} via Engine::with_policy drifted");
    }
}

/// The goldens above were locked in by the tree-walking interpreter;
/// the compiled-bytecode evaluator (today's default) must land on the
/// exact same numbers, and so must an explicit `EvalMode::Tree` run —
/// the `--eval` flag changes the execution strategy, never the answer.
#[test]
fn goldens_hold_under_both_eval_modes() {
    for (name, arm, want) in goldens() {
        let policy = FiringPolicy::from_tag(match arm {
            "lex" => "select-one-lex",
            "mea" => "select-one-mea",
            _ => "fire-all",
        })
        .unwrap();
        for eval in [EvalMode::Tree, EvalMode::Bytecode] {
            let s = golden_scenario(name);
            let mut e = Engine::with_policy(
                s.program(),
                s.initial_wm(),
                policy,
                EngineOptions { eval, ..EngineOptions::default() },
            );
            let out = e.run().unwrap();
            let got = observe(&out, e.stats(), e.wm());
            assert_eq!(got, want, "{name}/{arm} drifted under {} eval", eval.name());
        }
    }
}

/// Auto copy-and-constrain lock-in, both directions:
///
/// * **Off by default**: `EngineOptions::default().auto_ccc` is `None`,
///   so `golden_lock_in_both_engines_and_all_strategies` above — whose
///   constants predate the feature — already proves the default path is
///   bit-identical to pre-flag behavior. The assert here keeps the
///   default from silently flipping.
/// * **On**: the mid-run split is a pure function of (program, WM,
///   options) — the decision reads only matcher state populations — so
///   two runs agree bit-for-bit, the split announces itself in the log,
///   and every *semantic* observable (stats, outcome flags, final WM
///   fingerprint) equals the unsplit golden: the transform may only
///   rebalance work, never change the answer.
#[test]
fn auto_ccc_runs_are_bit_identical_and_semantics_locked() {
    assert!(
        EngineOptions::default().auto_ccc.is_none(),
        "auto-ccc must stay opt-in"
    );

    let s = golden_scenario("closure(n=12,e=20)");
    let run = || {
        let mut e = ParallelEngine::new(
            s.program(),
            s.initial_wm(),
            EngineOptions {
                matcher: MatcherKind::PartitionedRete(2),
                auto_ccc: Some(AutoCcc {
                    after_cycles: 1,
                    min_imbalance: 1.0,
                    factor: 2,
                }),
                ..Default::default()
            },
        );
        let out = e.run().unwrap();
        (
            observe(&out, e.stats(), e.wm()),
            e.log().to_vec(),
            e.wm().sorted_snapshot(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "auto-ccc runs must be bit-identical");

    let (got, log, _) = a;
    assert!(
        log.iter().any(|l| l.starts_with("auto-ccc: split rule")),
        "the split must be logged, got {log:?}"
    );
    let want = goldens()
        .into_iter()
        .find(|(name, arm, _)| *name == "closure(n=12,e=20)" && *arm == "fire-all")
        .map(|(_, _, g)| g)
        .unwrap();
    assert_eq!(
        got, want,
        "auto-ccc changed an observable beyond load balance"
    );
}

#[test]
fn stepping_equals_running() {
    for s in scenarios() {
        let mut stepped =
            ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let mut steps = 0u64;
        while stepped.step().unwrap() {
            steps += 1;
        }
        let mut ran = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = ran.run().unwrap();
        assert_eq!(steps, out.cycles, "{}", s.name());
        assert_eq!(
            stepped.wm().sorted_snapshot(),
            ran.wm().sorted_snapshot(),
            "{}",
            s.name()
        );
    }
}
