//! Determinism guarantees: a PARULEL run is a pure function of
//! (program, initial WM, options) — independent of thread scheduling,
//! hash iteration order, and whether RHS evaluation ran in parallel.

use parulel::prelude::*;
use parulel::workloads::{self, Scenario};

fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(workloads::Closure::new(12, 20, 1)),
        Box::new(workloads::LabelProp::new(16, 20, 2)),
        Box::new(workloads::Seating::new(2, 6, 3)),
        Box::new(workloads::Market::new(12, 3, 4)),
        Box::new(workloads::Waltz::new(8, 4, 5)),
        Box::new(workloads::WaltzDb::new(3, 3, 3, 6)),
    ]
}

#[test]
fn identical_runs_are_byte_identical() {
    for s in scenarios() {
        let run = || {
            let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
            let out = e.run().unwrap();
            (
                out.cycles,
                out.firings,
                e.log().to_vec(),
                e.wm().sorted_snapshot(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "{} cycles differ", s.name());
        assert_eq!(a.1, b.1, "{} firings differ", s.name());
        assert_eq!(a.2, b.2, "{} logs differ", s.name());
        assert_eq!(a.3, b.3, "{} final WMs differ", s.name());
    }
}

#[test]
fn parallel_and_sequential_fire_agree() {
    for s in scenarios() {
        let run = |parallel_fire: bool| {
            let mut e = ParallelEngine::new(
                s.program(),
                s.initial_wm(),
                EngineOptions {
                    parallel_fire,
                    ..Default::default()
                },
            );
            e.run().unwrap();
            (e.log().to_vec(), e.wm().sorted_snapshot())
        };
        assert_eq!(run(true), run(false), "{}", s.name());
    }
}

#[test]
fn worker_count_does_not_change_results() {
    for s in scenarios() {
        let run = |n: usize| {
            let mut e = ParallelEngine::new(
                s.program(),
                s.initial_wm(),
                EngineOptions {
                    matcher: MatcherKind::PartitionedRete(n),
                    ..Default::default()
                },
            );
            e.run().unwrap();
            e.wm().sorted_snapshot()
        };
        let one = run(1);
        for n in [2, 5, 16] {
            assert_eq!(run(n), one, "{} with {n} workers", s.name());
        }
    }
}

#[test]
fn stepping_equals_running() {
    for s in scenarios() {
        let mut stepped =
            ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let mut steps = 0u64;
        while stepped.step().unwrap() {
            steps += 1;
        }
        let mut ran = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let out = ran.run().unwrap();
        assert_eq!(steps, out.cycles, "{}", s.name());
        assert_eq!(
            stepped.wm().sorted_snapshot(),
            ran.wm().sorted_snapshot(),
            "{}",
            s.name()
        );
    }
}
