//! Full-pipeline language behaviour tests: small programs written in the
//! surface syntax, compiled with `parulel-lang`, executed with the
//! parallel engine, asserted on final working memory and logs.

use parulel::prelude::*;

/// Compiles, loads `(class, fields)` facts, runs, returns the engine.
fn run(src: &str, facts: &[(&str, Vec<Value>)]) -> ParallelEngine {
    let program = compile(src).unwrap_or_else(|e| panic!("compile error: {e}"));
    let mut wm = WorkingMemory::new(&program.classes);
    for (class, fields) in facts {
        let cid = program
            .classes
            .id_of(program.interner.intern(class))
            .unwrap_or_else(|| panic!("unknown class {class}"));
        wm.insert(cid, fields.clone());
    }
    let mut e = ParallelEngine::new(&program, wm, EngineOptions::default());
    e.run().unwrap_or_else(|err| panic!("run error: {err}"));
    e
}

fn ints(e: &ParallelEngine, class: &str) -> Vec<Vec<i64>> {
    let p = e.program();
    let cid = p.classes.id_of(p.interner.intern(class)).unwrap();
    let mut rows: Vec<Vec<i64>> = e
        .wm()
        .iter_class(cid)
        .map(|w| {
            w.fields
                .iter()
                .map(|v| match v {
                    Value::Int(i) => *i,
                    other => panic!("expected int, got {other:?}"),
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn disjunction_restrictions() {
    let e = run(
        "(literalize color name)
         (literalize hit name)
         (p warm (color ^name << red orange yellow >>) --> (make hit ^name 1) (remove 1))",
        &[],
    );
    // seed via a second run with symbol facts
    let p = compile(
        "(literalize color name)
         (literalize hit name)
         (p warm (color ^name { << red orange yellow >> <n> }) --> (make hit ^name <n>) (remove 1))",
    )
    .unwrap();
    let i = &p.interner;
    let color = p.classes.id_of(i.intern("color")).unwrap();
    let hit = p.classes.id_of(i.intern("hit")).unwrap();
    let mut wm = WorkingMemory::new(&p.classes);
    for c in ["red", "blue", "yellow", "green"] {
        wm.insert(color, vec![Value::Sym(i.intern(c))]);
    }
    let mut eng = ParallelEngine::new(&p, wm, EngineOptions::default());
    eng.run().unwrap();
    assert_eq!(eng.wm().iter_class(hit).count(), 2); // red + yellow
    assert_eq!(eng.wm().iter_class(color).count(), 2); // blue + green left
    drop(e);
}

#[test]
fn brace_conjunctions_and_predicates() {
    let e = run(
        "(literalize n v)
         (literalize keep v)
         (p band (n ^v { > 10 <= 20 <x> }) --> (make keep ^v <x>) (remove 1))",
        &[
            ("n", vec![Value::Int(5)]),
            ("n", vec![Value::Int(15)]),
            ("n", vec![Value::Int(20)]),
            ("n", vec![Value::Int(21)]),
        ],
    );
    assert_eq!(ints(&e, "keep"), vec![vec![15], vec![20]]);
}

#[test]
fn negation_with_join_variable() {
    let e = run(
        "(literalize emp id boss)
         (literalize top id)
         (p find-roots (emp ^id <e> ^boss <b>) -(emp ^id <b>) --> (make top ^id <e>))",
        &[
            ("emp", vec![Value::Int(1), Value::Int(99)]), // boss 99 not an emp
            ("emp", vec![Value::Int(2), Value::Int(1)]),
            ("emp", vec![Value::Int(3), Value::Int(2)]),
        ],
    );
    assert_eq!(ints(&e, "top"), vec![vec![1]]);
}

#[test]
fn bind_and_arithmetic_chain() {
    let e = run(
        "(literalize n v)
         (literalize out a b c)
         (p math (n ^v <x>)
          -->
          (bind <sq> (* <x> <x>))
          (bind <half> (// <sq> 2))
          (make out ^a <x> ^b <sq> ^c (mod <half> 10))
          (remove 1))",
        &[("n", vec![Value::Int(7)])],
    );
    assert_eq!(ints(&e, "out"), vec![vec![7, 49, 4]]); // 49/2=24, 24 mod 10 = 4
}

#[test]
fn halt_beats_quiescence() {
    let mut found_halt = false;
    let e = run(
        "(literalize n v)
         (p grow (n ^v <x>) (test (< <x> 100)) --> (modify 1 ^v (+ <x> 1)))
         (p bail (n ^v 10) --> (halt))",
        &[("n", vec![Value::Int(0)])],
    );
    for w in e.wm().iter() {
        if w.field(0) == Value::Int(11) {
            found_halt = true;
        }
    }
    assert!(
        found_halt,
        "halt fired at v=10 (grow also fired that cycle)"
    );
}

#[test]
fn float_arithmetic_promotes() {
    let e = run(
        "(literalize n v)
         (literalize out v)
         (p avg (n ^v <x>) --> (make out ^v (// <x> 2.0)) (remove 1))",
        &[("n", vec![Value::Int(7)])],
    );
    let p = e.program();
    let out = p.classes.id_of(p.interner.intern("out")).unwrap();
    let v = e.wm().iter_class(out).next().unwrap().field(0);
    assert_eq!(v, Value::Float(3.5));
}

#[test]
fn cross_ce_comparison_predicates() {
    let e = run(
        "(literalize item id price)
         (literalize cheaper a b)
         (p cmp (item ^id <a> ^price <pa>) (item ^id <b> ^price { < <pa> })
          --> (make cheaper ^a <a> ^b <b>))",
        &[
            ("item", vec![Value::Int(1), Value::Int(10)]),
            ("item", vec![Value::Int(2), Value::Int(5)]),
            ("item", vec![Value::Int(3), Value::Int(1)]),
        ],
    );
    // pairs (a,b) where price(b) < price(a): (1,2) (1,3) (2,3)
    assert_eq!(
        ints(&e, "cheaper"),
        vec![vec![1, 2], vec![1, 3], vec![2, 3]]
    );
}

#[test]
fn meta_rules_with_wildcards_and_tests() {
    let e = run(
        "(literalize job id cost)
         (literalize winner id)
         (p pick (job ^id <j> ^cost <c>) --> (make winner ^id <j>) (remove 1))
         (mp cheapest
           (inst pick (job ^cost <c1>))
           (inst pick (job ^cost <c2>))
           (test (> <c1> <c2>))
          --> (redact 1))
         (mp tie
           (inst pick (job ^id <i1> ^cost <c1>))
           (inst pick (job ^id <i2> ^cost <c2>))
           (test (= <c1> <c2>))
           (test (> <i1> <i2>))
          --> (redact 1))",
        &[
            ("job", vec![Value::Int(1), Value::Int(5)]),
            ("job", vec![Value::Int(2), Value::Int(3)]),
            ("job", vec![Value::Int(3), Value::Int(3)]),
        ],
    );
    // One winner per cycle, cheapest first, ties by id: 2, 3, 1.
    assert_eq!(ints(&e, "winner"), vec![vec![1], vec![2], vec![3]]);
}

#[test]
fn write_formats_all_value_kinds() {
    let e = run(
        "(literalize x s i f)
         (p report (x ^s <a> ^i <b> ^f <c>) --> (write <a> <b> <c> \"done\") (remove 1))",
        &[],
    );
    drop(e);
    let p = compile(
        "(literalize x s i f)
         (p report (x ^s <a> ^i <b> ^f <c>) --> (write <a> <b> <c> \"done\") (remove 1))",
    )
    .unwrap();
    let i = &p.interner;
    let x = p.classes.id_of(i.intern("x")).unwrap();
    let mut wm = WorkingMemory::new(&p.classes);
    wm.insert(
        x,
        vec![
            Value::Sym(i.intern("hello")),
            Value::Int(-3),
            Value::Float(2.5),
        ],
    );
    let mut eng = ParallelEngine::new(&p, wm, EngineOptions::default());
    eng.run().unwrap();
    assert_eq!(eng.log(), &["hello -3 2.5 done".to_string()]);
}

#[test]
fn pretty_printer_output_is_executable() {
    // Print a parsed program back to source, compile the print, and run
    // both — identical behaviour.
    let src = "
        (literalize n v)
        (literalize out v)
        (p double (n ^v { > 0 <x> }) --> (make out ^v (* <x> 2)) (remove 1))
        (mp biggest-first
          (inst double (n ^v <a>))
          (inst double (n ^v <b>))
          (test (< <a> <b>))
         --> (redact 1))";
    let printed = parulel::lang::printer::print_program(&parulel::lang::parse(src).unwrap());
    let facts = [
        ("n", vec![Value::Int(4)]),
        ("n", vec![Value::Int(9)]),
        ("n", vec![Value::Int(-1)]),
    ];
    let a = run(src, &facts);
    let b = run(&printed, &facts);
    assert_eq!(ints(&a, "out"), ints(&b, "out"));
    assert_eq!(ints(&a, "out"), vec![vec![8], vec![18]]);
}
