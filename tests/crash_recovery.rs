//! The durability headline proof, end to end through the real binary:
//! start `parulel serve` with a WAL directory, drive a workload over
//! TCP, `kill -9` the daemon mid-stream, restart it on the same
//! directory, and require the recovered session's WM fingerprint to
//! equal an uninterrupted reference run — plus the same proof for a
//! polite SIGTERM, which must persist sessions on the way out.
//!
//! `--wal-sync always` makes the contract exact: every frame the daemon
//! *acknowledged* is fsynced before the response is written, so the
//! state recovered after SIGKILL must reflect every acked frame, not
//! just most of them.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const PROGRAM: &str = "(literalize edge from to)\
(literalize reach from to)\
(p seed (edge ^from <a> ^to <b>) -(reach ^from <a> ^to <b>) --> (make reach ^from <a> ^to <b>))\
(p close (reach ^from <a> ^to <b>) (edge ^from <b> ^to <c>) -(reach ^from <a> ^to <c>) --> (make reach ^from <a> ^to <c>))";

type Edges = Vec<(i64, i64)>;

/// A chain of edges split into two waves; the crash lands between them.
fn edge_waves() -> (Edges, Edges) {
    let edges: Edges = (1..=16).map(|i| (i, i + 1)).collect();
    let mid = edges.len() / 2;
    (edges[..mid].to_vec(), edges[mid..].to_vec())
}

fn open_frame(session: &str) -> String {
    format!(
        r#"{{"op":"open","session":"{session}","program":"{}"}}"#,
        PROGRAM.replace('\\', "\\\\").replace('"', "\\\"")
    )
}

fn inject_frame(session: &str, edges: &[(i64, i64)]) -> String {
    let adds: Vec<String> = edges
        .iter()
        .map(|(a, b)| format!(r#"{{"class":"edge","fields":[{a},{b}]}}"#))
        .collect();
    format!(
        r#"{{"op":"inject","session":"{session}","adds":[{}]}}"#,
        adds.join(",")
    )
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "parulel-crash-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A running daemon plus the address it printed.
struct Daemon {
    child: Child,
    addr: String,
}

fn start_daemon(wal_dir: &Path) -> Daemon {
    start_daemon_with_workers(wal_dir, 1)
}

/// Starts the daemon with the sharded scheduler at the given width.
/// Crash recovery must hold at any `--workers` value: each shard
/// recovers exactly the WAL files whose sessions hash to it.
fn start_daemon_with_workers(wal_dir: &Path, workers: usize) -> Daemon {
    let workers = workers.to_string();
    let mut child = Command::new(env!("CARGO_BIN_EXE_parulel"))
        .args([
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--wal-dir",
            wal_dir.to_str().unwrap(),
            "--wal-sync",
            "always",
            "--workers",
            &workers,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn parulel serve");
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut lines = BufReader::new(stdout);
    let mut banner = String::new();
    lines.read_line(&mut banner).expect("listening banner");
    let addr = banner
        .trim()
        .strip_prefix("listening on tcp ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_string();
    Daemon { child, addr }
}

/// One connected protocol client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        // The listener is already bound when the banner prints, but be
        // tolerant of scheduler lag anyway.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let reader = BufReader::new(stream.try_clone().unwrap());
                    return Client { reader, writer: stream };
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("connect {addr}: {e}"),
            }
        }
    }

    /// Sends one frame, requires `ok:true`, returns the raw response.
    fn send_ok(&mut self, frame: &str) -> String {
        self.writer.write_all(frame.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        assert!(response.starts_with(r#"{"ok":true"#), "{frame} -> {response}");
        response
    }
}

fn field<'a>(response: &'a str, key: &str) -> &'a str {
    let tag = format!("\"{key}\":\"");
    let start = response.find(&tag).unwrap_or_else(|| panic!("no {key} in {response}")) + tag.len();
    let end = start + response[start..].find('"').unwrap();
    &response[start..end]
}

fn wait_for_exit(child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(_) => return,
            None if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20))
            }
            None => {
                let _ = child.kill();
                panic!("daemon did not exit in time");
            }
        }
    }
}

/// The uninterrupted reference: the same frames against one daemon that
/// never dies.
fn reference_fingerprint() -> String {
    let (wave1, wave2) = edge_waves();
    let dir = tmp_dir("reference");
    let mut daemon = start_daemon(&dir);
    let mut client = Client::connect(&daemon.addr);
    client.send_ok(&open_frame("ref"));
    client.send_ok(&inject_frame("ref", &wave1));
    client.send_ok(r#"{"op":"run","session":"ref"}"#);
    client.send_ok(&inject_frame("ref", &wave2));
    let run = client.send_ok(r#"{"op":"run","session":"ref"}"#);
    let fingerprint = field(&run, "fingerprint").to_string();
    client.send_ok(r#"{"op":"shutdown"}"#);
    wait_for_exit(&mut daemon.child);
    let _ = std::fs::remove_dir_all(&dir);
    fingerprint
}

#[test]
fn kill_dash_nine_then_restart_yields_identical_fingerprint() {
    let expected = reference_fingerprint();
    let (wave1, wave2) = edge_waves();
    let dir = tmp_dir("sigkill");

    // Phase 1: drive the first wave, then die without warning.
    let mut daemon = start_daemon(&dir);
    let mut client = Client::connect(&daemon.addr);
    client.send_ok(&open_frame("victim"));
    client.send_ok(&inject_frame("victim", &wave1));
    client.send_ok(r#"{"op":"run","session":"victim"}"#);
    // Queue the second wave but do NOT drain it: the crash must preserve
    // queued injects too, not just applied state.
    client.send_ok(&inject_frame("victim", &wave2));
    // kill -9: SIGKILL, no handler, no flush, no goodbye.
    daemon.child.kill().expect("SIGKILL");
    wait_for_exit(&mut daemon.child);

    // Phase 2: restart on the same WAL dir; the session must be back.
    let mut daemon = start_daemon(&dir);
    let mut client = Client::connect(&daemon.addr);
    let ping = client.send_ok(r#"{"op":"ping"}"#);
    assert!(ping.contains(r#""recovered_sessions":1"#), "{ping}");
    let run = client.send_ok(r#"{"op":"run","session":"victim"}"#);
    assert_eq!(
        field(&run, "fingerprint"),
        expected,
        "recovered state diverged from the uninterrupted run"
    );
    client.send_ok(r#"{"op":"shutdown"}"#);
    wait_for_exit(&mut daemon.child);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_dash_nine_with_four_workers_recovers_every_shard() {
    let expected = reference_fingerprint();
    let (wave1, wave2) = edge_waves();
    let dir = tmp_dir("sigkill-sharded");
    let sessions = ["alpha", "beta", "gamma", "delta", "epsilon"];

    // Phase 1: five sessions spread across four shards, all mid-stream.
    let mut daemon = start_daemon_with_workers(&dir, 4);
    let mut client = Client::connect(&daemon.addr);
    for name in &sessions {
        client.send_ok(&open_frame(name));
        client.send_ok(&inject_frame(name, &wave1));
        client.send_ok(&format!(r#"{{"op":"run","session":"{name}"}}"#));
        client.send_ok(&inject_frame(name, &wave2));
    }
    daemon.child.kill().expect("SIGKILL");
    wait_for_exit(&mut daemon.child);

    // Phase 2: restart at the same width; every shard must recover its
    // own sessions and merged ping must report all of them.
    let mut daemon = start_daemon_with_workers(&dir, 4);
    let mut client = Client::connect(&daemon.addr);
    let ping = client.send_ok(r#"{"op":"ping"}"#);
    assert!(ping.contains(r#""recovered_sessions":5"#), "{ping}");
    for name in &sessions {
        let run = client.send_ok(&format!(r#"{{"op":"run","session":"{name}"}}"#));
        assert_eq!(
            field(&run, "fingerprint"),
            expected,
            "session {name} diverged after sharded recovery"
        );
    }
    client.send_ok(r#"{"op":"shutdown"}"#);
    wait_for_exit(&mut daemon.child);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The hot-swap leg of the headline proof: a `reload` acknowledged
/// before SIGKILL is part of the durable truth. The replacement
/// program's extra rule asserts self-loop `reach` facts, so if the
/// restarted daemon replayed the original program the fingerprint
/// would differ.
#[test]
fn kill_dash_nine_preserves_an_acknowledged_reload() {
    let program_v2 = format!(
        "{PROGRAM}\
         (p selfloop (reach ^from <a> ^to <b>) -(reach ^from <a> ^to <a>) --> (make reach ^from <a> ^to <a>))"
    );
    let reload_frame = format!(
        r#"{{"op":"reload","session":"victim","program":"{}"}}"#,
        program_v2.replace('\\', "\\\\").replace('"', "\\\"")
    );
    let (wave1, wave2) = edge_waves();

    // Reference: open → wave1 → run → reload v2 → wave2 → run, no crash.
    let expected = {
        let dir = tmp_dir("reload-reference");
        let mut daemon = start_daemon(&dir);
        let mut client = Client::connect(&daemon.addr);
        client.send_ok(&open_frame("victim"));
        client.send_ok(&inject_frame("victim", &wave1));
        client.send_ok(r#"{"op":"run","session":"victim"}"#);
        client.send_ok(&reload_frame);
        client.send_ok(&inject_frame("victim", &wave2));
        let run = client.send_ok(r#"{"op":"run","session":"victim"}"#);
        let fingerprint = field(&run, "fingerprint").to_string();
        client.send_ok(r#"{"op":"shutdown"}"#);
        wait_for_exit(&mut daemon.child);
        let _ = std::fs::remove_dir_all(&dir);
        fingerprint
    };

    // Same frames, but SIGKILL right after the second wave is queued —
    // the reload and the undrained injects both live only in the WAL.
    let dir = tmp_dir("reload-sigkill");
    let mut daemon = start_daemon(&dir);
    let mut client = Client::connect(&daemon.addr);
    client.send_ok(&open_frame("victim"));
    client.send_ok(&inject_frame("victim", &wave1));
    client.send_ok(r#"{"op":"run","session":"victim"}"#);
    let r = client.send_ok(&reload_frame);
    assert!(r.contains(r#""added":["selfloop"]"#), "{r}");
    client.send_ok(&inject_frame("victim", &wave2));
    daemon.child.kill().expect("SIGKILL");
    wait_for_exit(&mut daemon.child);

    let mut daemon = start_daemon(&dir);
    let mut client = Client::connect(&daemon.addr);
    let ping = client.send_ok(r#"{"op":"ping"}"#);
    assert!(ping.contains(r#""recovered_sessions":1"#), "{ping}");
    let run = client.send_ok(r#"{"op":"run","session":"victim"}"#);
    assert_eq!(
        field(&run, "fingerprint"),
        expected,
        "recovered session is not running the reloaded program"
    );
    client.send_ok(r#"{"op":"shutdown"}"#);
    wait_for_exit(&mut daemon.child);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_persists_sessions_and_restart_recovers_them() {
    let expected = reference_fingerprint();
    let (wave1, wave2) = edge_waves();
    let dir = tmp_dir("sigterm");

    let mut daemon = start_daemon(&dir);
    let mut client = Client::connect(&daemon.addr);
    client.send_ok(&open_frame("polite"));
    client.send_ok(&inject_frame("polite", &wave1));
    client.send_ok(r#"{"op":"run","session":"polite"}"#);
    client.send_ok(&inject_frame("polite", &wave2));
    // Graceful shutdown: the signal handler persists every session's
    // WAL (compact + fsync) before the process exits.
    let status = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    wait_for_exit(&mut daemon.child);

    let mut daemon = start_daemon(&dir);
    let mut client = Client::connect(&daemon.addr);
    let ping = client.send_ok(r#"{"op":"ping"}"#);
    assert!(ping.contains(r#""recovered_sessions":1"#), "{ping}");
    let run = client.send_ok(r#"{"op":"run","session":"polite"}"#);
    assert_eq!(field(&run, "fingerprint"), expected);
    client.send_ok(r#"{"op":"shutdown"}"#);
    wait_for_exit(&mut daemon.child);
    let _ = std::fs::remove_dir_all(&dir);
}
