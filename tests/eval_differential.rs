//! Compiler differential suite: the compiled-bytecode evaluator must be
//! observationally identical to the tree-walking reference interpreter
//! across every matcher and firing policy, and a live `reload` must be
//! semantically invisible (identity reload) or exactly equivalent to a
//! fresh engine on the replacement program (changed-rule reload).
//!
//! The generator is shared with the matcher equivalence suites
//! (`crates/match/tests/common`), extended with random RHS actions so
//! the fire path — not just matching — is exercised.

#[path = "../crates/match/tests/common/mod.rs"]
mod common;

use common::{build_program, build_program_in, rule_spec_with_actions, RuleSpec};
use parulel::prelude::*;
use proptest::prelude::*;
use std::fmt::Write as _;

const MATCHERS: [MatcherKind; 5] = [
    MatcherKind::Naive,
    MatcherKind::Rete,
    MatcherKind::Treat,
    MatcherKind::PartitionedRete(3),
    MatcherKind::PartitionedTreat(2),
];
const POLICIES: [&str; 3] = ["fire-all", "select-one-lex", "select-one-mea"];

/// Budgeted options: random programs with `make` actions can grow WM
/// combinatorially, so the budgets abort runaway cases early — the
/// point is that both evaluators abort *identically*.
fn opts(matcher: MatcherKind, eval: EvalMode) -> EngineOptions {
    EngineOptions {
        matcher,
        eval,
        max_cycles: 6,
        budgets: Budgets {
            timeout: None,
            max_wm: Some(64),
            max_conflict_set: Some(5_000),
            max_delta: Some(200),
        },
        ..EngineOptions::default()
    }
}

fn seed_wm(program: &Program, adds: &[(u8, Vec<i64>)]) -> WorkingMemory {
    let mut wm = WorkingMemory::new(&program.classes);
    for (class, fields) in adds {
        wm.insert(
            ClassId((class % 2) as u32),
            fields.iter().copied().map(Value::Int).collect::<Vec<_>>(),
        );
    }
    wm
}

/// Runs one engine to completion and renders everything observable
/// about the run — terminal status, counters, the write log, and the
/// full canonical WM — into one comparable string. Errors (budget
/// trips) are observations too: both backends must trip the same
/// budget at the same point.
fn observe(program: &Program, adds: &[(u8, Vec<i64>)], policy: &str, o: EngineOptions) -> String {
    let policy = FiringPolicy::from_tag(policy).unwrap();
    let mut engine = ParallelEngine::with_policy(program, seed_wm(program, adds), policy, o);
    let mut out = String::new();
    match engine.run() {
        Ok(outcome) => {
            let s = engine.stats();
            writeln!(
                out,
                "status={} cycles={} firings={} redacted={}+{} meta_rounds={} \
                 eligible={}/{} adds={} removes={}",
                outcome.status(),
                s.cycles,
                s.firings,
                s.redacted_meta,
                s.redacted_guard,
                s.meta_rounds,
                s.peak_eligible,
                s.total_eligible,
                s.adds,
                s.removes,
            )
            .unwrap();
        }
        Err(e) => writeln!(out, "error={e}").unwrap(),
    }
    for line in engine.log() {
        writeln!(out, "log {line}").unwrap();
    }
    writeln!(out, "wm {:?}", engine.wm().canonical_facts()).unwrap();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Tentpole property: for random rule programs *with actions* and
    /// random seed facts, [`EvalMode::Bytecode`] and [`EvalMode::Tree`]
    /// produce identical observations under all four incremental
    /// matchers plus the naive oracle, and under both firing
    /// disciplines (parallel fire-all, serial select-one lex/mea).
    #[test]
    fn bytecode_equals_tree_on_every_matcher_and_policy(
        specs in prop::collection::vec(rule_spec_with_actions(), 1..3),
        adds in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(0i64..4, common::ARITY)), 0..8),
    ) {
        let program = build_program(&specs);
        for matcher in MATCHERS {
            for policy in POLICIES {
                let tree = observe(&program, &adds, policy, opts(matcher, EvalMode::Tree));
                let bytecode =
                    observe(&program, &adds, policy, opts(matcher, EvalMode::Bytecode));
                prop_assert_eq!(
                    &tree, &bytecode,
                    "diverged under {:?} / {}", matcher, policy
                );
            }
        }
    }

    /// Reloading the *identical* program mid-stream is a semantic no-op:
    /// an engine that steps once, reloads a structurally equal program,
    /// and runs on, finishes with exactly the WM and firing count of an
    /// engine that never reloaded. (The run log is excluded — reload
    /// announces itself with one log line by design.)
    #[test]
    fn identity_reload_mid_stream_is_transparent(
        specs in prop::collection::vec(rule_spec_with_actions(), 1..3),
        adds in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(0i64..4, common::ARITY)), 0..8),
        which in (0usize..MATCHERS.len(), 0usize..POLICIES.len()),
    ) {
        let (matcher, policy) = (MATCHERS[which.0], POLICIES[which.1]);
        let program = build_program(&specs);
        let run = |reload: bool| {
            let mut e = ParallelEngine::with_policy(
                &program,
                seed_wm(&program, &adds),
                FiringPolicy::from_tag(policy).unwrap(),
                opts(matcher, EvalMode::Bytecode),
            );
            let first = e.step();
            if reload {
                let twin = build_program_in(&program.interner, &specs);
                e.reload(&twin).expect("identity reload must be accepted");
            }
            let rest = if first.is_ok() { e.run().map(|_| ()) } else { Ok(()) };
            (
                first.map_err(|err| err.to_string()),
                rest.map_err(|err| err.to_string()),
                e.stats().firings,
                e.wm().canonical_facts(),
            )
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// Swapping to a *different* program is equivalent to starting a
    /// fresh engine on that program with the same facts: `reload`
    /// carries no residue of the old rules. (Both engines are pre-fire,
    /// so empty refraction memories agree.)
    #[test]
    fn changed_rule_reload_equals_fresh_engine(
        before in prop::collection::vec(rule_spec_with_actions(), 1..3),
        after in prop::collection::vec(rule_spec_with_actions(), 1..3),
        adds in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(0i64..4, common::ARITY)), 0..8),
        which in (0usize..MATCHERS.len(), 0usize..POLICIES.len()),
    ) {
        let (matcher, policy) = (MATCHERS[which.0], POLICIES[which.1]);
        let old = build_program(&before);
        // Same symbol space, so WME class/field symbols line up.
        let new = build_program_in(&old.interner, &after);

        let observe_run = |e: &mut ParallelEngine| {
            let res = e.run().map(|o| o.status()).map_err(|err| err.to_string());
            let log: Vec<&String> = e
                .log()
                .iter()
                .filter(|l| !l.starts_with("reload:"))
                .collect();
            (
                res,
                e.stats().firings,
                format!("{log:?}"),
                e.wm().canonical_facts(),
            )
        };

        let mut swapped = ParallelEngine::with_policy(
            &old,
            seed_wm(&old, &adds),
            FiringPolicy::from_tag(policy).unwrap(),
            opts(matcher, EvalMode::Bytecode),
        );
        swapped.reload(&new).expect("same class table: reload must be accepted");

        let mut fresh = ParallelEngine::with_policy(
            &new,
            seed_wm(&new, &adds),
            FiringPolicy::from_tag(policy).unwrap(),
            opts(matcher, EvalMode::Bytecode),
        );

        prop_assert_eq!(observe_run(&mut swapped), observe_run(&mut fresh));
    }
}

/// Deterministic spot-check kept cheap enough for `--release`-less CI:
/// a rule whose RHS uses arithmetic, modify, and remove, run under
/// both evaluators on every matcher.
#[test]
fn arithmetic_rhs_regression() {
    use common::{ActionSpec, CeSpec, CheckSpec, ExprSpec};
    let specs = vec![RuleSpec {
        ces: vec![
            CeSpec { class: 0, negated: false, tests: vec![(0, CheckSpec::Var(0, 0))] },
            CeSpec { class: 1, negated: false, tests: vec![(1, CheckSpec::Var(0, 1))] },
        ],
        cross_test: true,
        actions: vec![
            ActionSpec::Make { class: 1, exprs: vec![ExprSpec::Bin(0, 2, 0), ExprSpec::Var(1)] },
            ActionSpec::ModifyCe(0, 1, ExprSpec::Bin(2, 3, 0)),
            ActionSpec::RemoveCe(1),
            ActionSpec::WriteLine(vec![ExprSpec::Var(0), ExprSpec::Const(7)]),
        ],
    }];
    let program = build_program(&specs);
    let adds = vec![(0u8, vec![1, 0]), (0, vec![2, 3]), (1, vec![0, 2]), (1, vec![3, 1])];
    for matcher in MATCHERS {
        for policy in POLICIES {
            assert_eq!(
                observe(&program, &adds, policy, opts(matcher, EvalMode::Tree)),
                observe(&program, &adds, policy, opts(matcher, EvalMode::Bytecode)),
                "diverged under {matcher:?} / {policy}"
            );
        }
    }
}
