//! Workspace-level end-to-end tests: every workload, every matcher, both
//! engines — all runs validated against the workloads' Rust reference
//! implementations, and cross-checked against each other.

use parulel::prelude::*;
use parulel::workloads::{self, Scenario};

fn kinds() -> Vec<MatcherKind> {
    vec![
        MatcherKind::Naive,
        MatcherKind::Rete,
        MatcherKind::Treat,
        MatcherKind::PartitionedRete(4),
        MatcherKind::PartitionedTreat(3),
    ]
}

/// Smaller instances than the bench defaults: this test runs the naive
/// matcher too.
fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(workloads::Closure::new(14, 24, 7)),
        Box::new(workloads::LabelProp::new(20, 24, 11)),
        Box::new(workloads::Seating::new(3, 6, 3)),
        Box::new(workloads::Market::new(16, 4, 5)),
        Box::new(workloads::Waltz::new(10, 4, 13)),
        Box::new(workloads::WaltzDb::new(3, 3, 3, 17)),
    ]
}

#[test]
fn every_workload_validates_under_every_matcher() {
    for s in scenarios() {
        let mut reference: Option<Vec<_>> = None;
        for kind in kinds() {
            let opts = EngineOptions {
                matcher: kind,
                ..Default::default()
            };
            let mut e = ParallelEngine::new(s.program(), s.initial_wm(), opts);
            let out = e.run().unwrap_or_else(|err| panic!("{}: {err}", s.name()));
            assert!(
                out.quiescent || out.halted,
                "{} under {kind:?} did not terminate cleanly: {out:?}",
                s.name()
            );
            s.validate(e.wm())
                .unwrap_or_else(|err| panic!("{} under {kind:?}: {err}", s.name()));
            // All matchers must produce *identical* runs (same conflict
            // sets every cycle ⇒ same final WM including ids).
            let snapshot = e.wm().sorted_snapshot();
            match &reference {
                None => reference = Some(snapshot),
                Some(r) => assert_eq!(
                    &snapshot,
                    r,
                    "{} under {kind:?} diverged from the reference matcher",
                    s.name()
                ),
            }
        }
    }
}

#[test]
fn serial_baselines_also_validate() {
    for s in scenarios() {
        for strategy in [Strategy::Lex, Strategy::Mea] {
            let mut e = SerialEngine::new(
                s.program(),
                s.initial_wm(),
                strategy,
                EngineOptions::default(),
            );
            let out = e.run().unwrap();
            assert!(out.quiescent, "{} {strategy:?}", s.name());
            s.validate(e.wm())
                .unwrap_or_else(|err| panic!("{} under serial {strategy:?}: {err}", s.name()));
        }
    }
}

#[test]
fn parallel_engine_never_fires_more_cycles_than_serial() {
    for s in scenarios() {
        let mut par = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
        let p = par.run().unwrap();
        let mut ser = SerialEngine::new(
            s.program(),
            s.initial_wm(),
            Strategy::Lex,
            EngineOptions::default(),
        );
        let q = ser.run().unwrap();
        assert!(
            p.cycles <= q.cycles,
            "{}: PARULEL used {} cycles, serial {}",
            s.name(),
            p.cycles,
            q.cycles
        );
    }
}

#[test]
fn guard_modes_do_not_break_valid_programs() {
    // All six workloads resolve their conflicts via meta-rules (or have
    // none); adding the write-write guard must not change validity.
    for s in scenarios() {
        let policy = parulel::engine::FiringPolicy::FireAll {
            meta: true,
            guard: parulel::engine::GuardMode::WriteWrite,
        };
        let mut e =
            parulel::engine::Engine::with_policy(s.program(), s.initial_wm(), policy, EngineOptions::default());
        e.run().unwrap();
        s.validate(e.wm())
            .unwrap_or_else(|err| panic!("{} with WW guard: {err}", s.name()));
        assert_eq!(
            e.stats().redacted_guard,
            0,
            "{}: guard found conflicts the meta-rules should prevent",
            s.name()
        );
    }
}

#[test]
fn copy_and_constrain_preserves_every_workload() {
    use parulel::engine::copy_and_constrain;
    for s in scenarios() {
        // Split the first rule of each program 3 ways.
        let name = s.program().rule_name(parulel::core::RuleId(0));
        let split = copy_and_constrain(s.program(), &name, 3)
            .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        let mut e = ParallelEngine::new(&split, s.initial_wm(), EngineOptions::default());
        e.run().unwrap();
        s.validate(e.wm())
            .unwrap_or_else(|err| panic!("{} split 3-way: {err}", s.name()));
    }
}
