//! Workspace-level tests of the machine-model pipeline: profile a real
//! workload run, replay it on the simulated machine, and check the
//! structural properties the Figure 1b narrative relies on.

use parulel::prelude::*;
use parulel::sim::{profile_run, simulate, speedup_curve, Assignment, CostModel};
use parulel::workloads::{Closure, Scenario};

#[test]
fn profiles_cover_every_cycle_and_all_fired_work() {
    let s = Closure::new(14, 24, 7);
    let mut e = ParallelEngine::new(s.program(), s.initial_wm(), EngineOptions::default());
    let out = e.run().unwrap();
    let profiles =
        profile_run(s.program(), s.initial_wm(), EngineOptions::default()).unwrap();
    assert_eq!(profiles.len() as u64, out.cycles);
    let total_fire: u64 = profiles.iter().map(|p| p.fire_ops()).sum();
    assert_eq!(total_fire, out.firings);
}

#[test]
fn simulated_speedup_is_sane_on_real_profiles() {
    let s = Closure::new(20, 36, 3);
    let profiles =
        profile_run(s.program(), s.initial_wm(), EngineOptions::default()).unwrap();
    let cost = CostModel::default();
    let curve = speedup_curve(&profiles, &cost, &[1, 2, 4, 8], Assignment::Lpt);
    // monotone non-decreasing, starts at 1
    assert!((curve[0].1 - 1.0).abs() < 1e-9);
    for pair in curve.windows(2) {
        assert!(pair[1].1 >= pair[0].1 - 1e-9, "{curve:?}");
    }
    // closure has 2 rules: predicted speedup can never exceed 2 plus the
    // (small) fire overlap — certainly under 3
    assert!(curve.last().unwrap().1 < 3.0, "{curve:?}");
}

#[test]
fn copy_and_constrain_raises_the_simulated_ceiling() {
    let s = Closure::new(30, 55, 7);
    let cost = CostModel::default();
    let base_profiles =
        profile_run(s.program(), s.initial_wm(), EngineOptions::default()).unwrap();
    let base = simulate(&base_profiles, &cost, 8, Assignment::Lpt);

    let split = parulel::engine::copy_and_constrain(s.program(), "close", 8).unwrap();
    let split_profiles =
        profile_run(&split, s.initial_wm(), EngineOptions::default()).unwrap();
    let fast = simulate(&split_profiles, &cost, 8, Assignment::Lpt);

    assert!(
        fast.total_ns < base.total_ns,
        "split {} !< base {}",
        fast.total_ns,
        base.total_ns
    );
    assert!(fast.imbalance < base.imbalance, "{fast:?} vs {base:?}");
}

#[test]
fn lpt_never_loses_to_round_robin_on_real_profiles() {
    for s in parulel::workloads::all_default() {
        let profiles =
            profile_run(s.program(), s.initial_wm(), EngineOptions::default()).unwrap();
        let cost = CostModel::default();
        for w in [2, 4, 8] {
            let rr = simulate(&profiles, &cost, w, Assignment::RoundRobin);
            let lpt = simulate(&profiles, &cost, w, Assignment::Lpt);
            assert!(
                lpt.total_ns <= rr.total_ns,
                "{} at {w} PEs: LPT {} > RR {}",
                s.name(),
                lpt.total_ns,
                rr.total_ns
            );
        }
    }
}
