//! Offline shim for the subset of `rayon` this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This shim reimplements the few parallel-iterator entry
//! points the engine and matchers rely on (`par_iter().map().collect()`,
//! `par_iter_mut().for_each()`) as contiguous-chunk fork-join over
//! `std::thread::scope`. Chunks are joined in order, so `map` + `collect`
//! preserves input order exactly like rayon's indexed parallel iterators —
//! the property the engine's deterministic delta merge depends on.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (compat) or
//! `std::thread::available_parallelism`. A panic inside a worker closure
//! unwinds into the forking thread (as with rayon), not the whole process.

use std::panic;

/// The traits user code imports via `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

fn max_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every element, in parallel chunks, preserving order.
fn chunked_map<'a, T, U, F>(items: &'a [T], f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<U>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                Err(payload) => panic::resume_unwind(payload),
            }
        }
    });
    parts.into_iter().flatten().collect()
}

/// Runs `f` on every element of `items` in parallel chunks.
fn chunked_for_each_mut<T: Send, F: Fn(&mut T) + Sync>(items: &mut [T], f: F) {
    let n = items.len();
    let threads = max_threads().min(n);
    if threads <= 1 {
        items.iter_mut().for_each(f);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|c| s.spawn(move || c.iter_mut().for_each(f)))
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                panic::resume_unwind(payload);
            }
        }
    });
}

/// Shared-reference parallel iterator (`.par_iter()`).
pub struct ParIter<'a, T>(&'a [T]);

/// Mutable-reference parallel iterator (`.par_iter_mut()`).
pub struct ParIterMut<'a, T>(&'a mut [T]);

/// A mapped parallel iterator awaiting `collect`/`for_each`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element; evaluation happens at `collect`/`for_each`.
    pub fn map<U, F: Fn(&'a T) -> U>(self, f: F) -> ParMap<'a, T, F> {
        ParMap { items: self.0, f }
    }

    /// Runs `f` over every element in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        chunked_map(self.0, &|t| f(t));
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff no elements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, F> {
    /// Evaluates the map in parallel and collects in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        chunked_map(self.items, &self.f).into_iter().collect()
    }

    /// Evaluates the map in parallel, discarding results.
    pub fn for_each<G: Fn(U) + Sync>(self, g: G) {
        let f = &self.f;
        chunked_map(self.items, &|t| g(f(t)));
    }
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Runs `f` over every element in parallel.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        chunked_for_each_mut(self.0, f);
    }
}

/// `.par_iter()` on slice-backed containers.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter(self)
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter(self)
    }
}

/// `.par_iter_mut()` on slice-backed containers.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut(self)
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut(self)
    }
}

/// Fork-join of two closures (rayon's primitive), here: two scoped threads.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(v) => rb = Some(v),
            Err(payload) => panic::resume_unwind(payload),
        }
        ra
    });
    (ra, rb.expect("joined"))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<i64> = (0..10_000).collect();
        let doubled: Vec<i64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_like_fromiterator() {
        let v: Vec<i64> = (0..100).collect();
        let ok: Result<Vec<i64>, String> = v.par_iter().map(|x| Ok(*x)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<i64>, String> = v
            .par_iter()
            .map(|x| if *x == 50 { Err("boom".to_string()) } else { Ok(*x) })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn for_each_mut_touches_every_element() {
        let mut v = vec![0u64; 4096];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn worker_panic_unwinds_not_aborts() {
        let v: Vec<i64> = (0..64).collect();
        let r = std::panic::catch_unwind(|| {
            v.par_iter().for_each(|x| {
                if *x == 63 {
                    panic!("injected");
                }
            });
        });
        assert!(r.is_err());
    }
}
