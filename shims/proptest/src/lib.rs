//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This shim keeps the same API shape — `proptest!`,
//! `Strategy`/`prop_map`/`prop_recursive`, `prop_oneof!`, range and tuple
//! and regex-subset string strategies, `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::select` — but generates cases from a
//! fixed per-test seed and does **no shrinking**: a failing case panics
//! with its case number. Streams are deterministic across runs, so test
//! outcomes are stable.

pub mod test_runner {
    /// Per-test configuration (`ProptestConfig { cases, .. }`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases to run.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property, produced by `prop_assert!`/`prop_assert_eq!`.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure from a rendered message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generation stream (SplitMix64), seeded per test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name via FNV-1a, so every test has its own
        /// reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (n > 0).
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A value generator. Unlike real proptest there is no shrinking: a
    /// strategy is just a deterministic sampler over the test RNG stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the RNG stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies: `self` is the leaf; `recurse` builds one
        /// level on top of an inner strategy. `depth` bounds nesting; the
        /// size/branch hints are accepted for API compatibility only.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // At every level allow falling back to the leaf so depth
                // varies per sample instead of always maxing out.
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
            }
            strat
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds from `(weight, strategy)` arms; weights must sum > 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total;
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights summed to total")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i64, i32, i16, i8, u64, u32, u16, u8, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A/0, B/1);
    impl_tuple_strategy!(A/0, B/1, C/2);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

/// Regex-subset string generation for `&str` strategies.
///
/// Supported grammar (everything the workspace's test patterns use):
/// a sequence of atoms, where an atom is `.`, a `[...]` character class
/// (literal chars, `a-z` ranges, `\-`-style escapes), or a literal
/// character, optionally followed by a `{m}` / `{m,n}` repetition.
pub mod string {
    use super::test_runner::TestRng;

    enum Atom {
        Any,
        Class(Vec<(char, char)>), // inclusive ranges; singletons as (c, c)
        Lit(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize, // inclusive
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        // `a-z` range (but a trailing `-` is a literal)
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((c, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((c, c));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated [..] in pattern {pattern:?}");
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    Atom::Lit(c)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {..} in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition lower bound"),
                        hi.trim().parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn any_char(rng: &mut TestRng) -> char {
        // Mostly printable ASCII so generated soup is token-shaped, with a
        // tail of whitespace, control bytes, and wider unicode to keep the
        // "never panics on arbitrary input" properties honest.
        match rng.below(16) {
            0 => ['\n', '\t', '\r', '\0', '\u{7f}'][rng.below(5)],
            1 => char::from_u32(0x80 + rng.below(0xFF00) as u32).unwrap_or('\u{fffd}'),
            _ => (0x20u8 + rng.below(0x5f) as u8) as char,
        }
    }

    fn class_char(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: usize = ranges
            .iter()
            .map(|&(lo, hi)| (hi as usize) - (lo as usize) + 1)
            .sum();
        let mut pick = rng.below(total);
        for &(lo, hi) in ranges {
            let span = (hi as usize) - (lo as usize) + 1;
            if pick < span {
                return char::from_u32(lo as u32 + pick as u32).expect("class range is valid");
            }
            pick -= span;
        }
        unreachable!("pick < total")
    }

    /// Generates one string matching `pattern`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let n = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..n {
                out.push(match &piece.atom {
                    Atom::Any => any_char(rng),
                    Atom::Class(ranges) => class_char(ranges, rng),
                    Atom::Lit(c) => *c,
                });
            }
        }
        out
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by `any::<T>()`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Canonical strategy for `T` (`any::<u8>()`, `any::<bool>()`, ...).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Element-count bound for `collection::vec`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` with a size in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<T>` (3:1 biased toward `Some`, as upstream).
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }

    /// `prop::sample::select(vec![..])`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }
}

/// The names test files import with `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Weighted (`3 => strat`) or uniform choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Fails the surrounding property if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the surrounding property if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the surrounding property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..500 {
            let v = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            let xs = prop::collection::vec(0i64..4, 1..25).generate(&mut rng);
            assert!((1..25).contains(&xs.len()));
            assert!(xs.iter().all(|x| (0..4).contains(x)));
        }
    }

    #[test]
    fn string_patterns_match_their_shape() {
        let mut rng = crate::test_runner::TestRng::from_name("strings");
        for _ in 0..500 {
            let s = "[a-z][a-z0-9-]{0,6}".generate(&mut rng);
            let cs: Vec<char> = s.chars().collect();
            assert!((1..=7).contains(&cs.len()), "{s:?}");
            assert!(cs[0].is_ascii_lowercase(), "{s:?}");
            assert!(
                cs[1..]
                    .iter()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '-'),
                "{s:?}"
            );
            let soup = ".{0,200}".generate(&mut rng);
            assert!(soup.chars().count() <= 200);
        }
    }

    #[test]
    fn oneof_weights_and_recursion_terminate() {
        #[derive(Clone, Debug, PartialEq)]
        enum Expr {
            Leaf(i64),
            Pair(Box<Expr>, Box<Expr>),
        }
        fn depth(e: &Expr) -> usize {
            match e {
                Expr::Leaf(_) => 0,
                Expr::Pair(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0i64..10).prop_map(Expr::Leaf).prop_recursive(3, 12, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Expr::Pair(Box::new(l), Box::new(r)))
        });
        let mut rng = crate::test_runner::TestRng::from_name("recursion");
        let mut saw_pair = false;
        for _ in 0..200 {
            let e = strat.generate(&mut rng);
            assert!(depth(&e) <= 3, "{e:?}");
            saw_pair |= matches!(e, Expr::Pair(..));
        }
        assert!(saw_pair);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_plumbing_works(
            xs in prop::collection::vec(any::<u8>(), 0..8),
            flag in any::<bool>(),
            pick in prop::sample::select(vec!["a", "b"]),
            maybe in prop::option::of(1i64..=3),
        ) {
            prop_assert!(xs.len() < 8);
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(pick == "a" || pick == "b");
            if let Some(v) = maybe {
                prop_assert!((1..=3).contains(&v), "bad {v}");
            }
            prop_assert_eq!(xs.len(), xs.len(), "lengths {}", xs.len());
            prop_assert_ne!(xs.len() + 1, xs.len());
        }
    }
}
