//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This shim wraps `std::sync` primitives behind the
//! `parking_lot` API shape (no `Result` from lock acquisition; a poisoned
//! lock panics, which matches the workspace's usage where a panicking
//! holder is already fatal to the owning structure).

use std::sync;

/// A reader–writer lock with the `parking_lot` calling convention.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A mutex with the `parking_lot` calling convention.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_locks_recover() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison");
        })
        .join();
        // parking_lot has no poisoning; the shim must keep working.
        assert_eq!(*l.read(), 0);
    }
}
