//! Offline shim for the subset of `rand` this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. The workload generators only need a seedable deterministic
//! small RNG (`SmallRng::seed_from_u64`), integer `gen_range`, and slice
//! shuffling — reimplemented here over SplitMix64. Streams differ from the
//! real `rand` crate, which is fine: every workload validates its final
//! working memory against a Rust reference computed from the *same*
//! generated input, so only determinism matters, not the exact stream.

/// Seeding entry point (`SmallRng::seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value interface used by the workload generators.
pub trait Rng {
    /// The core generator: the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

/// Range types `gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i64, i32, u64, u32, u16, u8, usize, isize);

/// The RNG types namespace (`rand::rngs::SmallRng`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic RNG (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zeros fixpoint-ish start for seed 0 by mixing.
            SmallRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // add + two xor-shift-multiplies per output.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers (`rand::seq::SliceRandom`).
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3i64..17);
            assert!((-3..17).contains(&v));
            let w = rng.gen_range(1i64..=100);
            assert!((1..=100).contains(&w));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_range_hits_every_bucket() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<i64> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements virtually never shuffle to id");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = SmallRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i64; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
