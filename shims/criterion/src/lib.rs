//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This shim keeps the `criterion_group!`/`criterion_main!`
//! bench-harness API shape and reports a simple mean wall-clock time per
//! iteration — enough to compare hot paths locally, with none of the
//! statistical machinery (no outlier analysis, no HTML reports).

use std::time::{Duration, Instant};

/// Rough per-benchmark measurement budget.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const WARMUP_ITERS: u64 = 3;
const MAX_ITERS: u64 = 100_000;

/// Opaque-to-the-optimizer value sink (best-effort without std intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint; accepted for API compatibility, batches are size 1.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("rete", 64)` renders as `rete/64`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), param),
        }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            mean_ns: 0.0,
            iters: 0,
        }
    }

    /// Times `routine` over repeated calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS && (iters == 0 || start.elapsed() < MEASURE_BUDGET) {
            black_box(routine());
            iters += 1;
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        while iters < MAX_ITERS && (iters == 0 || spent < MEASURE_BUDGET) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
        }
        self.mean_ns = spent.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn report(name: &str, b: &Bencher) {
    let (value, unit) = if b.mean_ns >= 1_000_000.0 {
        (b.mean_ns / 1_000_000.0, "ms")
    } else if b.mean_ns >= 1_000.0 {
        (b.mean_ns / 1_000.0, "µs")
    } else {
        (b.mean_ns, "ns")
    };
    println!("{name:<40} {value:>10.2} {unit}/iter  ({} iters)", b.iters);
}

/// The bench driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.full), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles bench functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_positive_time() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut b = Bencher::new();
        b.iter_batched(
            || vec![1u64, 2, 3],
            |v| v.into_iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.iters > 0);
        assert!(b.mean_ns >= 0.0);
    }

    #[test]
    fn group_runs_parameterized_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        for n in [4u64, 8] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>());
            });
        }
        group.finish();
    }
}
