//! The `parulel` binary: see crate docs / `parulel --help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    std::process::exit(parulel_cli::run_cli(&argv, &mut stdout));
}
