//! # parulel — facade crate
//!
//! A from-scratch reproduction of *"The PARULEL Parallel Rule Language"*
//! (S. Stolfo et al., Proc. 1991 Intl. Conf. on Parallel Processing).
//!
//! PARULEL is an OPS5-class forward-chaining production-rule language with
//! two distinguishing ideas:
//!
//! 1. **Set-oriented parallel firing** — every cycle, *all* rule
//!    instantiations that survive conflict resolution fire simultaneously,
//!    instead of OPS5's one-instantiation-per-cycle loop.
//! 2. **Meta-rules** — conflict resolution is programmable: declarative
//!    rules whose working memory *is the conflict set* delete ("redact")
//!    conflicting instantiations before the fire phase.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`](parulel_core) — symbols, values, working memory, rule IR.
//! * [`lang`](parulel_lang) — the surface language: lexer, parser, compiler.
//! * [`rmatch`](parulel_match) — RETE / TREAT / naive match engines and the
//!   partitioned parallel matcher.
//! * [`engine`](parulel_engine) — the single cycle kernel with pluggable
//!   firing policies (PARULEL fire-all and the serial OPS5 baseline),
//!   meta-rule evaluation, and copy-and-constrain.
//! * [`workloads`](parulel_workloads) — benchmark rule programs.
//! * [`sim`](parulel_sim) — an analytic model of the DADO-class parallel
//!   machine the paper evaluated on, driven by measured cycle profiles.
//! * [`server`](parulel_server) — the `parulel serve` daemon: sessions
//!   multiplexed over a line-delimited JSON protocol (stdio/TCP/Unix).
//!
//! ## Quickstart
//!
//! ```
//! use parulel::prelude::*;
//!
//! let src = r#"
//!     (literalize count n)
//!     (p step
//!       (count ^n <n>)
//!       (test (< <n> 3))
//!      -->
//!       (modify 1 ^n (+ <n> 1)))
//! "#;
//! let program = parulel::lang::compile(src).expect("compiles");
//! let mut wm = WorkingMemory::new(&program.classes);
//! let count = program.classes.id_of(program.interner.intern("count")).unwrap();
//! wm.insert(count, vec![Value::Int(0)]);
//!
//! let mut engine = ParallelEngine::new(&program, wm, EngineOptions::default());
//! let outcome = engine.run().unwrap();
//! assert_eq!(outcome.cycles, 3);
//! let final_n = engine.wm().iter_class(count).next().unwrap().field(0);
//! assert_eq!(final_n, Value::Int(3));
//! ```

#![warn(missing_docs)]

pub use parulel_core as core;
pub use parulel_engine as engine;
pub use parulel_lang as lang;
pub use parulel_match as rmatch;
pub use parulel_server as server;
pub use parulel_sim as sim;
pub use parulel_workloads as workloads;

/// Convenient glob-import surface: the types almost every user needs.
pub mod prelude {
    pub use parulel_core::{
        ClassId, ConflictSet, Delta, Instantiation, Program, RuleId, Symbol, Value, WorkingMemory,
    };
    pub use parulel_engine::{
        AutoCcc, Budgets, Engine, EngineError, EngineOptions, EvalMode, FiringPolicy, MatcherKind,
        MetricsLevel, Outcome, ParallelEngine, ReloadReport, SerialEngine, Snapshot, SnapshotError,
        Strategy,
    };
    pub use parulel_lang::compile;
    pub use parulel_match::{Matcher, NaiveMatcher, Rete, Treat};
}
